"""DiGamma's specialised genetic operators (paper Fig. 4).

Each operator perturbs a specific slice of the HW-Mapping design space in a
structured way instead of re-randomising genes blindly:

=============  ===========================================================
``crossover``  blends tiling / parallelism (and therefore derived buffer
               sizing) between two parents, level by level
``reorder``    permutes the loop order of one level (compute order)
``grow``       doubles or halves one tile size ("grow / aging"), walking
               the tiling-and-buffer trade-off smoothly
``mutate_map`` re-samples mapping genes: a tile size (preferring divisors
               of the dimension extent) or the parallel dimension
``mutate_hw``  re-sizes or re-shapes the PE array while respecting the
               platform's maximum PE count, which in turn re-balances the
               derived buffer allocation
=============  ===========================================================

All operators work in place on genome copies and are followed by
:func:`repro.encoding.repair.repair_genome` in the algorithm loop.

Each operator also has a gene-matrix-native ``*_row`` twin operating on one
:class:`~repro.encoding.genome_matrix.GenomeMatrix` row in place.  The row
twins draw from the RNG in *exactly* the same order with *exactly* the same
calls, so a search loop switching between the genome and row forms follows
a bit-identical trajectory (pinned by ``tests/optim/test_matrix_parity.py``)
— the row forms just skip the per-member ``Genome``/dict/list churn.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.encoding.genome import Genome, GenomeSpace, log_uniform_int
from repro.encoding.genome_matrix import LEVEL_WIDTH
from repro.workloads.dims import DIMS


def crossover(parent_a: Genome, parent_b: Genome, rng: np.random.Generator) -> Genome:
    """Blend mapping genes of two parents, level by level.

    Tile sizes are inherited gene-wise from either parent; the parallel
    dimension is inherited per level.  Loop order and HW genes stay with the
    first parent (they have dedicated operators), so crossover explores the
    tiling/parallelism sub-space without scrambling the rest — the
    structured behaviour adapted from GAMMA.
    """
    child = parent_a.copy()
    # One batched draw per child: Generator.random(n) yields the same
    # stream as n scalar draws, so trajectories are unchanged while the
    # per-call overhead is paid once.
    draws = rng.random(7 * min(len(child.levels), len(parent_b.levels)))
    cursor = 0
    for level, other in zip(child.levels, parent_b.levels):
        for dim in DIMS:
            if draws[cursor] < 0.5:
                level.tiles[dim] = other.tiles[dim]
            cursor += 1
        if draws[cursor] < 0.5:
            level.parallel_dim = other.parallel_dim
        cursor += 1
    return child


def reorder(genome: Genome, rng: np.random.Generator) -> Genome:
    """Perturb the compute order of one randomly chosen level.

    With equal probability either two loop positions are swapped (a local
    move) or one loop is popped and re-inserted elsewhere (a rotation),
    which is how GAMMA steps through the order space.
    """
    level = genome.levels[int(rng.integers(genome.num_levels))]
    order: List[str] = list(level.order)
    if rng.random() < 0.5:
        i, j = rng.choice(len(order), size=2, replace=False)
        order[i], order[j] = order[j], order[i]
    else:
        source = int(rng.integers(len(order)))
        dim = order.pop(source)
        target = int(rng.integers(len(order) + 1))
        order.insert(target, dim)
    level.order = order
    return genome


def grow(genome: Genome, space: GenomeSpace, rng: np.random.Generator) -> Genome:
    """Grow or age (shrink) one tile size by a factor of two.

    Doubling a tile grows the derived buffer allocation and data reuse;
    halving ("aging") releases buffer area back to the budget.  Moving by
    factors of two walks the trade-off smoothly instead of jumping to an
    arbitrary value.
    """
    level = genome.levels[int(rng.integers(genome.num_levels))]
    # Indexing with integers() draws the same stream as rng.choice at a
    # fraction of the per-call cost (see the operator-parity tests).
    dim = DIMS[rng.integers(len(DIMS))]
    bound = space.dim_bounds[dim]
    if rng.random() < 0.5:
        level.tiles[dim] = min(bound, max(1, level.tiles[dim]) * 2)
    else:
        level.tiles[dim] = max(1, level.tiles[dim] // 2)
    return genome


def mutate_map(genome: Genome, space: GenomeSpace, rng: np.random.Generator) -> Genome:
    """Re-sample one mapping gene of one level.

    Tile sizes are re-sampled preferring divisors of the dimension bound
    (divisible tiles avoid padding waste); alternatively the parallel
    dimension is re-drawn, biased towards dimensions that are actually
    large enough to fill the level's spatial fan-out.  Occasionally the
    parallel tiles are re-balanced against the spatial sizes (see
    :func:`balance_parallel`).
    """
    level = genome.levels[int(rng.integers(genome.num_levels))]
    choice = rng.random()
    if choice < 0.6:
        dim = DIMS[rng.integers(len(DIMS))]
        bound = space.dim_bounds[dim]
        level.tiles[dim] = _sample_tile(bound, rng)
    elif choice < 0.85:
        level.parallel_dim = _sample_parallel_dim(level.spatial_size, space, rng)
    else:
        balance_parallel(genome, space)
    return genome


def mutate_hw(genome: Genome, space: GenomeSpace, rng: np.random.Generator) -> Genome:
    """Perturb the PE array size or aspect ratio (the HW genes).

    Either the total PE count is re-sampled within the platform's bound
    (biased towards budget-filling sizes — idle budget is wasted budget), or
    a factor of two is transferred between two levels (re-shaping the array
    at a constant PE count).  The parallel-dimension tiles are re-balanced
    afterwards so the new array stays spatially utilised: this is the
    "HW exploration respects the HW-mapping interaction" property of
    Sec. IV-C.  Because buffers are allocated from the mapping's
    requirement, the operator also re-balances the compute-to-memory area
    split.
    """
    if space.hw_is_fixed:
        return genome
    if rng.random() < 0.5 or genome.num_levels == 1:
        if rng.random() < 0.5:
            # Explore the full range of PE counts.
            total = log_uniform_int(rng, 1, space.max_pes)
        else:
            # Exploit the upper half of the budget, where strong designs live.
            total = int(rng.integers(max(1, space.max_pes // 4), space.max_pes + 1))
        _split_pes(genome, total, rng)
    else:
        indices = rng.choice(genome.num_levels, size=2, replace=False)
        giver = genome.levels[int(indices[0])]
        taker = genome.levels[int(indices[1])]
        if giver.spatial_size >= 2:
            giver.spatial_size = max(1, giver.spatial_size // 2)
            taker.spatial_size = max(1, taker.spatial_size * 2)
    if rng.random() < 0.75:
        balance_parallel(genome, space)
    return genome


def seeded_genome(space: GenomeSpace, rng: np.random.Generator) -> Genome:
    """Sample a domain-informed starting point.

    Random initialisation wastes much of a small sampling budget on designs
    that no competent engineer would draw: tiny PE arrays that leave the
    area budget idle, or spatial mappings over dimensions too small to fill
    the array.  A seeded genome starts from the obvious priors instead —
    a budget-filling, roughly square PE array, parallel dimensions drawn
    from the largest tensor dimensions, and unit parallel tiles so every
    sub-cluster receives work — while leaving the loop order and the
    remaining tile sizes random for the GA to refine.
    """
    genome = space.random_genome(rng)
    if not space.hw_is_fixed:
        total = int(rng.integers(max(1, space.max_pes // 2), space.max_pes + 1))
        rows = max(1, int(round(total ** 0.5)))
        columns = max(1, total // rows)
        sizes = [rows, columns]
        rng.shuffle(sizes)
        for level, size in zip(genome.levels, sizes):
            level.spatial_size = int(size)
        if genome.num_levels > 2:
            for level in genome.levels[2:]:
                level.spatial_size = 1
    large_dims = [dim for dim in DIMS if space.dim_bounds[dim] >= 8] or list(DIMS)
    for level in genome.levels:
        level.parallel_dim = large_dims[rng.integers(len(large_dims))]
    balance_parallel(genome, space)
    return genome


def initial_population(
    space: GenomeSpace,
    population_size: int,
    seeded_fraction: float,
    rng: np.random.Generator,
) -> List[Genome]:
    """Seeded + random starting genomes shared by the GA-family loops.

    The first ``int(population_size * seeded_fraction)`` members come from
    the domain-informed sampler, the rest from the uniform one — the split
    (and its draw order) is part of the pinned search trajectories.
    """
    num_seeded = int(population_size * seeded_fraction)
    return [
        seeded_genome(space, rng) for _ in range(num_seeded)
    ] + space.random_population(population_size - num_seeded, rng)


def balance_parallel(genome: Genome, space: GenomeSpace) -> Genome:
    """Set each level's parallel-dimension tile to one element per sub-cluster.

    With a unit tile the spatial distribution activates
    ``min(pi, extent)`` sub-clusters on every layer — the maximum possible —
    and any surplus extent becomes temporal folds instead of idle hardware.
    Larger parallel tiles can only reduce the number of active sub-clusters
    and inflate the shared-buffer macro tile, so re-balancing after a HW
    perturbation keeps the new array fully utilised across all layer shapes.
    """
    del space  # bounds are not needed: a unit tile is legal everywhere
    for level in genome.levels:
        level.tiles[level.parallel_dim] = 1
    return genome


# -- gene-matrix row twins --------------------------------------------------
#
# Rows are plain Python lists of ints (one GenomeMatrix row, tolist'ed):
# list indexing is several times cheaper than NumPy scalar indexing at this
# width, and a generation's children fold back into the matrix with one
# np.array call.


def crossover_rows(
    parent_a: List[int],
    parent_b: List[int],
    num_levels: int,
    rng: np.random.Generator,
) -> List[int]:
    """Row twin of :func:`crossover`: returns a new child row."""
    child = parent_a.copy()
    draws = rng.random(7 * num_levels).tolist()
    cursor = 0
    for level in range(num_levels):
        base = level * LEVEL_WIDTH
        for column in range(base + 8, base + 14):
            if draws[cursor] < 0.5:
                child[column] = parent_b[column]
            cursor += 1
        if draws[cursor] < 0.5:
            child[base + 1] = parent_b[base + 1]
        cursor += 1
    return child


def reorder_row(
    row: List[int], num_levels: int, rng: np.random.Generator
) -> List[int]:
    """Row twin of :func:`reorder` (in place)."""
    base = int(rng.integers(num_levels)) * LEVEL_WIDTH
    if rng.random() < 0.5:
        i, j = rng.choice(6, size=2, replace=False)
        i = base + 2 + int(i)
        j = base + 2 + int(j)
        row[i], row[j] = row[j], row[i]
    else:
        order = row[base + 2 : base + 8]
        source = int(rng.integers(6))
        dim = order.pop(source)
        target = int(rng.integers(len(order) + 1))
        order.insert(target, dim)
        row[base + 2 : base + 8] = order
    return row


def grow_row(
    row: List[int],
    space: GenomeSpace,
    num_levels: int,
    rng: np.random.Generator,
) -> List[int]:
    """Row twin of :func:`grow` (in place)."""
    base = int(rng.integers(num_levels)) * LEVEL_WIDTH
    dim_index = int(rng.integers(len(DIMS)))
    bound = space.dim_bounds[DIMS[dim_index]]
    column = base + 8 + dim_index
    if rng.random() < 0.5:
        row[column] = min(bound, max(1, row[column]) * 2)
    else:
        row[column] = max(1, row[column] // 2)
    return row


def mutate_map_row(
    row: List[int],
    space: GenomeSpace,
    num_levels: int,
    rng: np.random.Generator,
) -> List[int]:
    """Row twin of :func:`mutate_map` (in place)."""
    base = int(rng.integers(num_levels)) * LEVEL_WIDTH
    choice = rng.random()
    if choice < 0.6:
        dim_index = int(rng.integers(len(DIMS)))
        bound = space.dim_bounds[DIMS[dim_index]]
        row[base + 8 + dim_index] = _sample_tile(bound, rng)
    elif choice < 0.85:
        row[base + 1] = _sample_parallel_index(row[base], space, rng)
    else:
        balance_parallel_row(row, num_levels)
    return row


def mutate_hw_row(
    row: List[int],
    space: GenomeSpace,
    num_levels: int,
    rng: np.random.Generator,
) -> List[int]:
    """Row twin of :func:`mutate_hw` (in place)."""
    if space.hw_is_fixed:
        return row
    if rng.random() < 0.5 or num_levels == 1:
        if rng.random() < 0.5:
            total = log_uniform_int(rng, 1, space.max_pes)
        else:
            total = int(rng.integers(max(1, space.max_pes // 4), space.max_pes + 1))
        _split_pes_row(row, num_levels, total, rng)
    else:
        indices = rng.choice(num_levels, size=2, replace=False)
        giver = int(indices[0]) * LEVEL_WIDTH
        taker = int(indices[1]) * LEVEL_WIDTH
        if row[giver] >= 2:
            row[giver] = max(1, row[giver] // 2)
            row[taker] = max(1, row[taker] * 2)
    if rng.random() < 0.75:
        balance_parallel_row(row, num_levels)
    return row


def balance_parallel_row(row: List[int], num_levels: int) -> List[int]:
    """Row twin of :func:`balance_parallel` (in place, draws nothing)."""
    for level in range(num_levels):
        base = level * LEVEL_WIDTH
        row[base + 8 + row[base + 1]] = 1
    return row


# -- helpers ---------------------------------------------------------------


#: Divisor lists are pure functions of the bound and bounds are few (one
#: per dimension per model), so they are computed once instead of per draw.
_DIVISOR_CACHE: dict = {}


def _divisors(bound: int) -> List[int]:
    cached = _DIVISOR_CACHE.get(bound)
    if cached is None:
        cached = [d for d in range(1, bound + 1) if bound % d == 0]
        _DIVISOR_CACHE[bound] = cached
    return cached


def _sample_tile(bound: int, rng: np.random.Generator) -> int:
    """Sample a tile size in [1, bound], preferring divisors of ``bound``."""
    if bound == 1:
        return 1
    if rng.random() < 0.5:
        divisors = _divisors(bound)
        return divisors[rng.integers(len(divisors))]
    return log_uniform_int(rng, 1, bound)


def _sample_parallel_dim(
    spatial_size: int,
    space: GenomeSpace,
    rng: np.random.Generator,
) -> str:
    """Pick a parallel dimension, biased towards ones that can fill the array."""
    candidates = [dim for dim in DIMS if space.dim_bounds[dim] >= max(2, spatial_size // 2)]
    if candidates and rng.random() < 0.8:
        return candidates[rng.integers(len(candidates))]
    return DIMS[rng.integers(len(DIMS))]


def _sample_parallel_index(
    spatial_size: int,
    space: GenomeSpace,
    rng: np.random.Generator,
) -> int:
    """Index twin of :func:`_sample_parallel_dim` (identical draws)."""
    candidates = [
        index
        for index, dim in enumerate(DIMS)
        if space.dim_bounds[dim] >= max(2, spatial_size // 2)
    ]
    if candidates and rng.random() < 0.8:
        return candidates[rng.integers(len(candidates))]
    return int(rng.integers(len(DIMS)))


def _split_pes_row(
    row: List[int], num_levels: int, total: int, rng: np.random.Generator
) -> None:
    """Row twin of :func:`_split_pes` (identical draws)."""
    remaining = max(1, total)
    for index in range(num_levels):
        levels_left = num_levels - index
        if levels_left == 1:
            row[index * LEVEL_WIDTH] = remaining
            break
        share = log_uniform_int(rng, 1, max(1, remaining))
        row[index * LEVEL_WIDTH] = share
        remaining = max(1, remaining // share)


def _split_pes(genome: Genome, total: int, rng: np.random.Generator) -> None:
    """Distribute ``total`` PEs across the genome's levels as a random split."""
    remaining = max(1, total)
    for index, level in enumerate(genome.levels):
        levels_left = genome.num_levels - index
        if levels_left == 1:
            level.spatial_size = remaining
            break
        # Sample this level's share in log space so both tall and wide
        # aspect ratios are reachable.
        upper = max(1, remaining)
        share = log_uniform_int(rng, 1, upper)
        level.spatial_size = share
        remaining = max(1, remaining // share)
