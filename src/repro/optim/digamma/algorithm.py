"""The DiGamma genetic algorithm (paper Sec. IV-C).

DiGamma is an elitist genetic algorithm over the structured genome encoding
whose operators (see :mod:`repro.optim.digamma.operators`) are specialised
for the HW-Mapping co-optimization space.  Buffer sizes are never part of
the genome: the evaluation block allocates exactly the buffer capacity the
decoded mapping needs, so the search walks the compute-vs-memory area
trade-off through the PE-array and tiling genes alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.encoding.genome import Genome
from repro.encoding.genome_matrix import GenomeMatrix, genome_to_genes
from repro.framework.search import SearchTracker
from repro.optim.base import (
    Optimizer,
    checkpoint_generation,
    evaluate_genomes,
    reject_resume,
    resume_state,
)
from repro.optim.digamma import operators


@dataclass(frozen=True)
class DiGammaHyperParameters:
    """Hyper-parameters of the DiGamma GA.

    The paper tunes these with Bayesian optimization; the defaults below
    come from a small sweep (see ``benchmarks/bench_ablation_operators.py``)
    and are intentionally unexciting: a moderately sized population with a
    small elite fraction and operator rates that apply roughly one
    structured perturbation per child.
    """

    population_size: Optional[int] = None
    elite_ratio: float = 0.10
    crossover_rate: float = 0.60
    reorder_rate: float = 0.30
    grow_rate: float = 0.40
    mutate_map_rate: float = 0.50
    mutate_hw_rate: float = 0.30
    #: Fraction of each generation re-seeded with fresh random genomes to
    #: keep diversity in the very rugged co-optimization landscape.
    immigration_ratio: float = 0.05

    def __post_init__(self) -> None:
        if self.population_size is not None and self.population_size < 4:
            raise ValueError("population_size must be >= 4 when given")
        if not 0.0 < self.elite_ratio < 1.0:
            raise ValueError("elite_ratio must be in (0, 1)")
        for name in (
            "crossover_rate",
            "reorder_rate",
            "grow_rate",
            "mutate_map_rate",
            "mutate_hw_rate",
            "immigration_ratio",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def resolved_population(self, sampling_budget: int) -> int:
        """Population size: explicit value, or scaled to the sampling budget."""
        if self.population_size is not None:
            return self.population_size
        return int(np.clip(sampling_budget // 25, 20, 100))


class DiGamma(Optimizer):
    """Domain-aware genetic algorithm for HW-Mapping co-optimization.

    Parameters
    ----------
    hyper_parameters:
        GA hyper-parameters; defaults follow DESIGN.md.
    use_hw_operators:
        When False the Mutate-HW operator is disabled.  This is how the
        GAMMA mapping-only baseline and the operator ablation are built.
    use_structured_operators:
        When False, reorder / grow / mutate-map degrade to nothing and only
        plain crossover remains (ablation support).
    seeded_fraction:
        Fraction of the initial population drawn from the domain-informed
        sampler (:func:`repro.optim.digamma.operators.seeded_genome`)
        instead of the uniform random sampler.
    use_matrix:
        When True (default) and the tracker exposes the gene-matrix view
        (:meth:`~repro.framework.search.SearchTracker.evaluate_matrix`),
        the generation loop keeps the population as a
        :class:`~repro.encoding.genome_matrix.GenomeMatrix` and applies the
        row-twin operators — same RNG stream, same fitnesses, no per-member
        ``Genome`` allocation.  Custom trackers without the matrix view
        (and ``use_matrix=False``, kept for the parity tests) take the
        original per-genome loop.
    """

    name = "DiGamma"
    supports_checkpoint = True

    def __init__(
        self,
        hyper_parameters: Optional[DiGammaHyperParameters] = None,
        use_hw_operators: bool = True,
        use_structured_operators: bool = True,
        seeded_fraction: float = 0.5,
        use_matrix: bool = True,
    ):
        if not 0.0 <= seeded_fraction <= 1.0:
            raise ValueError("seeded_fraction must be in [0, 1]")
        self.hyper_parameters = (
            hyper_parameters if hyper_parameters is not None else DiGammaHyperParameters()
        )
        self.use_hw_operators = use_hw_operators
        self.use_structured_operators = use_structured_operators
        self.seeded_fraction = seeded_fraction
        self.use_matrix = use_matrix

    # -- GA loop -------------------------------------------------------------

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        if (
            self.use_matrix
            and getattr(tracker, "evaluate_matrix", None) is not None
            and getattr(tracker, "prefers_matrix", True)
        ):
            return self._run_matrix(tracker, rng)
        return self._run_genomes(tracker, rng)

    def _initial_population(self, space, population_size, rng) -> List[Genome]:
        """Seeded + random starting genomes (shared by both loop forms)."""
        return operators.initial_population(
            space, population_size, self.seeded_fraction, rng
        )

    def _run_matrix(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """The gene-matrix generation loop (bit-identical trajectories)."""
        params = self.hyper_parameters
        space = tracker.space
        population_size = params.resolved_population(tracker.sampling_budget)
        num_elites = max(1, int(population_size * params.elite_ratio))
        num_immigrants = int(population_size * params.immigration_ratio)

        state = resume_state(tracker, "digamma-matrix")
        if state is not None:
            population = GenomeMatrix(
                np.array(state["rows"], dtype=np.int64),
                int(state["num_levels"]),
            )
            num_levels = population.num_levels
            fitnesses = [float(value) for value in state["fitnesses"]]
        else:
            population = GenomeMatrix.from_genomes(
                self._initial_population(space, population_size, rng)
            )
            num_levels = population.num_levels
            fitnesses = tracker.evaluate_matrix(population)
            if len(fitnesses) < len(population):
                return

        def loop_state():
            return {
                "kind": "digamma-matrix",
                "rows": population.data.tolist(),
                "num_levels": num_levels,
                "fitnesses": [float(value) for value in fitnesses],
            }

        while not tracker.exhausted:
            checkpoint_generation(tracker, loop_state)
            order = np.argsort(fitnesses)[::-1]
            parents = population.data.tolist()
            pool = [parents[i] for i in order[: max(2, population_size // 2)]]

            children = [parents[i].copy() for i in order[:num_elites]]
            for _ in range(num_immigrants):
                children.append(genome_to_genes(space.random_genome(rng)))
            while len(children) < population_size:
                children.append(
                    self._make_child_row(pool, space, num_levels, rng)
                )

            population = GenomeMatrix(
                np.array(children, dtype=np.int64), num_levels
            )
            fitnesses = tracker.evaluate_matrix(population)
            if len(fitnesses) < len(population):
                return

    def _run_genomes(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """The original per-genome loop (compatibility shim for trackers
        without the matrix view; pinned against the matrix loop by the
        trajectory-parity tests).  Not checkpointable: configurations on
        this path never write checkpoints, and resuming one written by the
        matrix loop is rejected loudly rather than silently restarted."""
        reject_resume(tracker)
        params = self.hyper_parameters
        space = tracker.space
        population_size = params.resolved_population(tracker.sampling_budget)
        num_elites = max(1, int(population_size * params.elite_ratio))
        num_immigrants = int(population_size * params.immigration_ratio)

        population = self._initial_population(space, population_size, rng)
        fitnesses: List[float] = evaluate_genomes(tracker, population)
        if len(fitnesses) < len(population):
            return

        while not tracker.exhausted:
            order = list(np.argsort(fitnesses)[::-1])
            elites = [population[i].copy() for i in order[:num_elites]]
            parent_pool = [population[i] for i in order[: max(2, population_size // 2)]]

            children: List[Genome] = [elite.copy() for elite in elites]
            for _ in range(num_immigrants):
                children.append(space.random_genome(rng))
            while len(children) < population_size:
                children.append(self._make_child(parent_pool, space, rng))

            population = children
            fitnesses = evaluate_genomes(tracker, population)
            if len(fitnesses) < len(population):
                return

    # -- reproduction ----------------------------------------------------------

    def _make_child(self, parent_pool, space, rng: np.random.Generator) -> Genome:
        params = self.hyper_parameters
        parent_a = parent_pool[int(rng.integers(len(parent_pool)))]
        parent_b = parent_pool[int(rng.integers(len(parent_pool)))]

        if rng.random() < params.crossover_rate:
            child = operators.crossover(parent_a, parent_b, rng)
        else:
            child = parent_a.copy()

        if self.use_structured_operators:
            if rng.random() < params.reorder_rate:
                child = operators.reorder(child, rng)
            if rng.random() < params.grow_rate:
                child = operators.grow(child, space, rng)
            if rng.random() < params.mutate_map_rate:
                child = operators.mutate_map(child, space, rng)
        if self.use_hw_operators and rng.random() < params.mutate_hw_rate:
            child = operators.mutate_hw(child, space, rng)
        return child

    def _make_child_row(
        self,
        pool: List[List[int]],
        space,
        num_levels: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Row twin of :meth:`_make_child` (identical RNG stream)."""
        params = self.hyper_parameters
        parent_a = pool[int(rng.integers(len(pool)))]
        parent_b = pool[int(rng.integers(len(pool)))]

        if rng.random() < params.crossover_rate:
            child = operators.crossover_rows(parent_a, parent_b, num_levels, rng)
        else:
            child = parent_a.copy()

        if self.use_structured_operators:
            if rng.random() < params.reorder_rate:
                operators.reorder_row(child, num_levels, rng)
            if rng.random() < params.grow_rate:
                operators.grow_row(child, space, num_levels, rng)
            if rng.random() < params.mutate_map_rate:
                operators.mutate_map_row(child, space, num_levels, rng)
        if self.use_hw_operators and rng.random() < params.mutate_hw_rate:
            operators.mutate_hw_row(child, space, num_levels, rng)
        return child
