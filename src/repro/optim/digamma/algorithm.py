"""The DiGamma genetic algorithm (paper Sec. IV-C).

DiGamma is an elitist genetic algorithm over the structured genome encoding
whose operators (see :mod:`repro.optim.digamma.operators`) are specialised
for the HW-Mapping co-optimization space.  Buffer sizes are never part of
the genome: the evaluation block allocates exactly the buffer capacity the
decoded mapping needs, so the search walks the compute-vs-memory area
trade-off through the PE-array and tiling genes alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.encoding.genome import Genome
from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer, evaluate_genomes
from repro.optim.digamma import operators


@dataclass(frozen=True)
class DiGammaHyperParameters:
    """Hyper-parameters of the DiGamma GA.

    The paper tunes these with Bayesian optimization; the defaults below
    come from a small sweep (see ``benchmarks/bench_ablation_operators.py``)
    and are intentionally unexciting: a moderately sized population with a
    small elite fraction and operator rates that apply roughly one
    structured perturbation per child.
    """

    population_size: Optional[int] = None
    elite_ratio: float = 0.10
    crossover_rate: float = 0.60
    reorder_rate: float = 0.30
    grow_rate: float = 0.40
    mutate_map_rate: float = 0.50
    mutate_hw_rate: float = 0.30
    #: Fraction of each generation re-seeded with fresh random genomes to
    #: keep diversity in the very rugged co-optimization landscape.
    immigration_ratio: float = 0.05

    def __post_init__(self) -> None:
        if self.population_size is not None and self.population_size < 4:
            raise ValueError("population_size must be >= 4 when given")
        if not 0.0 < self.elite_ratio < 1.0:
            raise ValueError("elite_ratio must be in (0, 1)")
        for name in (
            "crossover_rate",
            "reorder_rate",
            "grow_rate",
            "mutate_map_rate",
            "mutate_hw_rate",
            "immigration_ratio",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def resolved_population(self, sampling_budget: int) -> int:
        """Population size: explicit value, or scaled to the sampling budget."""
        if self.population_size is not None:
            return self.population_size
        return int(np.clip(sampling_budget // 25, 20, 100))


class DiGamma(Optimizer):
    """Domain-aware genetic algorithm for HW-Mapping co-optimization.

    Parameters
    ----------
    hyper_parameters:
        GA hyper-parameters; defaults follow DESIGN.md.
    use_hw_operators:
        When False the Mutate-HW operator is disabled.  This is how the
        GAMMA mapping-only baseline and the operator ablation are built.
    use_structured_operators:
        When False, reorder / grow / mutate-map degrade to nothing and only
        plain crossover remains (ablation support).
    seeded_fraction:
        Fraction of the initial population drawn from the domain-informed
        sampler (:func:`repro.optim.digamma.operators.seeded_genome`)
        instead of the uniform random sampler.
    """

    name = "DiGamma"

    def __init__(
        self,
        hyper_parameters: Optional[DiGammaHyperParameters] = None,
        use_hw_operators: bool = True,
        use_structured_operators: bool = True,
        seeded_fraction: float = 0.5,
    ):
        if not 0.0 <= seeded_fraction <= 1.0:
            raise ValueError("seeded_fraction must be in [0, 1]")
        self.hyper_parameters = (
            hyper_parameters if hyper_parameters is not None else DiGammaHyperParameters()
        )
        self.use_hw_operators = use_hw_operators
        self.use_structured_operators = use_structured_operators
        self.seeded_fraction = seeded_fraction

    # -- GA loop -------------------------------------------------------------

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        params = self.hyper_parameters
        space = tracker.space
        population_size = params.resolved_population(tracker.sampling_budget)
        num_elites = max(1, int(population_size * params.elite_ratio))
        num_immigrants = int(population_size * params.immigration_ratio)

        num_seeded = int(population_size * self.seeded_fraction)
        population = [
            operators.seeded_genome(space, rng) for _ in range(num_seeded)
        ] + space.random_population(population_size - num_seeded, rng)
        fitnesses: List[float] = evaluate_genomes(tracker, population)
        if len(fitnesses) < len(population):
            return

        while not tracker.exhausted:
            order = list(np.argsort(fitnesses)[::-1])
            elites = [population[i].copy() for i in order[:num_elites]]
            parent_pool = [population[i] for i in order[: max(2, population_size // 2)]]

            children: List[Genome] = [elite.copy() for elite in elites]
            for _ in range(num_immigrants):
                children.append(space.random_genome(rng))
            while len(children) < population_size:
                children.append(self._make_child(parent_pool, space, rng))

            population = children
            fitnesses = evaluate_genomes(tracker, population)
            if len(fitnesses) < len(population):
                return

    # -- reproduction ----------------------------------------------------------

    def _make_child(self, parent_pool, space, rng: np.random.Generator) -> Genome:
        params = self.hyper_parameters
        parent_a = parent_pool[int(rng.integers(len(parent_pool)))]
        parent_b = parent_pool[int(rng.integers(len(parent_pool)))]

        if rng.random() < params.crossover_rate:
            child = operators.crossover(parent_a, parent_b, rng)
        else:
            child = parent_a.copy()

        if self.use_structured_operators:
            if rng.random() < params.reorder_rate:
                child = operators.reorder(child, rng)
            if rng.random() < params.grow_rate:
                child = operators.grow(child, space, rng)
            if rng.random() < params.mutate_map_rate:
                child = operators.mutate_map(child, space, rng)
        if self.use_hw_operators and rng.random() < params.mutate_hw_rate:
            child = operators.mutate_hw(child, space, rng)
        return child
