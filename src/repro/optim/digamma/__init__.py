"""DiGamma: the paper's domain-aware genetic algorithm."""

from repro.optim.digamma.algorithm import DiGamma, DiGammaHyperParameters
from repro.optim.digamma import operators

__all__ = ["DiGamma", "DiGammaHyperParameters", "operators"]
