"""Standard genetic algorithm baseline.

This is the "stdGA" baseline of the paper: conventional uniform crossover
and random gene mutation applied blindly to the encoded design point,
without any of DiGamma's domain-aware operators.  Its poor sample efficiency
relative to DiGamma isolates the contribution of the specialised operators.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.encoding.genome import Genome, log_uniform_int
from repro.encoding.genome_matrix import LEVEL_WIDTH, GenomeMatrix
from repro.framework.search import SearchTracker
from repro.optim.base import (
    Optimizer,
    checkpoint_generation,
    evaluate_genomes,
    reject_resume,
    resume_state,
)
from repro.workloads.dims import DIMS


class StandardGA(Optimizer):
    """Elitist GA with uniform crossover and per-gene random mutation.

    The generation loop runs gene-matrix-native when the tracker exposes
    :meth:`~repro.framework.search.SearchTracker.evaluate_matrix` (same RNG
    stream and fitnesses as the per-genome form, pinned by the trajectory-
    parity tests); trackers without the matrix view — and
    ``use_matrix=False`` — take the original per-genome loop.
    """

    name = "stdGA"
    supports_checkpoint = True

    def __init__(
        self,
        population_size: int = 40,
        elite_ratio: float = 0.1,
        crossover_rate: float = 0.8,
        mutation_rate: float = 0.1,
        use_matrix: bool = True,
    ):
        if population_size < 4:
            raise ValueError("population_size must be >= 4")
        if not 0.0 < elite_ratio < 1.0:
            raise ValueError("elite_ratio must be in (0, 1)")
        self.population_size = population_size
        self.elite_ratio = elite_ratio
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.use_matrix = use_matrix

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        if (
            self.use_matrix
            and getattr(tracker, "evaluate_matrix", None) is not None
            and getattr(tracker, "prefers_matrix", True)
        ):
            return self._run_matrix(tracker, rng)
        return self._run_genomes(tracker, rng)

    def _run_matrix(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        space = tracker.space
        state = resume_state(tracker, "stdga-matrix")
        if state is not None:
            population = GenomeMatrix(
                np.array(state["rows"], dtype=np.int64),
                int(state["num_levels"]),
            )
            num_levels = population.num_levels
            fitnesses = [float(value) for value in state["fitnesses"]]
        else:
            population = GenomeMatrix.from_genomes(
                space.random_population(self.population_size, rng)
            )
            num_levels = population.num_levels
            fitnesses = tracker.evaluate_matrix(population)
            if len(fitnesses) < len(population):
                return

        def loop_state():
            return {
                "kind": "stdga-matrix",
                "rows": population.data.tolist(),
                "num_levels": num_levels,
                "fitnesses": [float(value) for value in fitnesses],
            }

        num_elites = max(1, int(self.population_size * self.elite_ratio))
        while not tracker.exhausted:
            checkpoint_generation(tracker, loop_state)
            order = np.argsort(fitnesses)[::-1]
            parents = population.data.tolist()

            children = [parents[i].copy() for i in order[:num_elites]]
            while len(children) < self.population_size:
                parent_a = parents[int(rng.choice(order[: self.population_size // 2]))]
                parent_b = parents[int(rng.choice(order[: self.population_size // 2]))]
                child = (
                    self._uniform_crossover_row(parent_a, parent_b, num_levels, rng)
                    if rng.random() < self.crossover_rate
                    else parent_a.copy()
                )
                self._mutate_row(child, space, num_levels, rng)
                children.append(child)

            population = GenomeMatrix(
                np.array(children, dtype=np.int64), num_levels
            )
            fitnesses = tracker.evaluate_matrix(population)
            if len(fitnesses) < len(population):
                return

    def _run_genomes(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        reject_resume(tracker)
        space = tracker.space
        population = space.random_population(self.population_size, rng)
        fitnesses = evaluate_genomes(tracker, population)
        if len(fitnesses) < len(population):
            return

        num_elites = max(1, int(self.population_size * self.elite_ratio))
        while not tracker.exhausted:
            order = np.argsort(fitnesses)[::-1]
            elites = [population[i] for i in order[:num_elites]]

            children: List[Genome] = [elite.copy() for elite in elites]
            while len(children) < self.population_size:
                parent_a = population[int(rng.choice(order[: self.population_size // 2]))]
                parent_b = population[int(rng.choice(order[: self.population_size // 2]))]
                child = (
                    self._uniform_crossover(parent_a, parent_b, rng)
                    if rng.random() < self.crossover_rate
                    else parent_a.copy()
                )
                self._mutate(child, tracker, rng)
                children.append(child)

            population = children
            fitnesses = evaluate_genomes(tracker, population)
            if len(fitnesses) < len(population):
                return

    # -- blind genetic operators --------------------------------------------

    @staticmethod
    def _uniform_crossover(a: Genome, b: Genome, rng: np.random.Generator) -> Genome:
        child = a.copy()
        for level_index, level in enumerate(child.levels):
            other = b.levels[level_index]
            if rng.random() < 0.5:
                level.spatial_size = other.spatial_size
            if rng.random() < 0.5:
                level.parallel_dim = other.parallel_dim
            if rng.random() < 0.5:
                level.order = list(other.order)
            for dim in DIMS:
                if rng.random() < 0.5:
                    level.tiles[dim] = other.tiles[dim]
        return child

    def _mutate(self, genome: Genome, tracker: SearchTracker, rng: np.random.Generator) -> None:
        space = tracker.space
        for level_index, level in enumerate(genome.levels):
            if rng.random() < self.mutation_rate:
                level.spatial_size = log_uniform_int(
                    rng, 1, space.spatial_bound(level_index)
                )
            if rng.random() < self.mutation_rate:
                level.parallel_dim = str(rng.choice(DIMS))
            if rng.random() < self.mutation_rate:
                order = list(level.order)
                rng.shuffle(order)
                level.order = order
            for dim in DIMS:
                if rng.random() < self.mutation_rate:
                    level.tiles[dim] = log_uniform_int(rng, 1, space.dim_bounds[dim])

    # -- gene-matrix row twins (identical RNG streams) -----------------------

    @staticmethod
    def _uniform_crossover_row(
        a: List[int], b: List[int], num_levels: int, rng: np.random.Generator
    ) -> List[int]:
        child = a.copy()
        for level in range(num_levels):
            base = level * LEVEL_WIDTH
            if rng.random() < 0.5:
                child[base] = b[base]
            if rng.random() < 0.5:
                child[base + 1] = b[base + 1]
            if rng.random() < 0.5:
                child[base + 2 : base + 8] = b[base + 2 : base + 8]
            for column in range(base + 8, base + 14):
                if rng.random() < 0.5:
                    child[column] = b[column]
        return child

    def _mutate_row(
        self,
        row: List[int],
        space,
        num_levels: int,
        rng: np.random.Generator,
    ) -> None:
        rate = self.mutation_rate
        for level_index in range(num_levels):
            base = level_index * LEVEL_WIDTH
            if rng.random() < rate:
                row[base] = log_uniform_int(
                    rng, 1, space.spatial_bound(level_index)
                )
            if rng.random() < rate:
                # Indexing with integers() draws the same stream as
                # rng.choice(DIMS) at a fraction of the per-call cost.
                row[base + 1] = int(rng.integers(len(DIMS)))
            if rng.random() < rate:
                order = row[base + 2 : base + 8]
                rng.shuffle(order)
                row[base + 2 : base + 8] = order
            for position, dim in enumerate(DIMS):
                if rng.random() < rate:
                    row[base + 8 + position] = log_uniform_int(
                        rng, 1, space.dim_bounds[dim]
                    )
