"""Standard genetic algorithm baseline.

This is the "stdGA" baseline of the paper: conventional uniform crossover
and random gene mutation applied blindly to the encoded design point,
without any of DiGamma's domain-aware operators.  Its poor sample efficiency
relative to DiGamma isolates the contribution of the specialised operators.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.encoding.genome import Genome, log_uniform_int
from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer, evaluate_genomes
from repro.workloads.dims import DIMS


class StandardGA(Optimizer):
    """Elitist GA with uniform crossover and per-gene random mutation."""

    name = "stdGA"

    def __init__(
        self,
        population_size: int = 40,
        elite_ratio: float = 0.1,
        crossover_rate: float = 0.8,
        mutation_rate: float = 0.1,
    ):
        if population_size < 4:
            raise ValueError("population_size must be >= 4")
        if not 0.0 < elite_ratio < 1.0:
            raise ValueError("elite_ratio must be in (0, 1)")
        self.population_size = population_size
        self.elite_ratio = elite_ratio
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        space = tracker.space
        population = space.random_population(self.population_size, rng)
        fitnesses = evaluate_genomes(tracker, population)
        if len(fitnesses) < len(population):
            return

        num_elites = max(1, int(self.population_size * self.elite_ratio))
        while not tracker.exhausted:
            order = np.argsort(fitnesses)[::-1]
            elites = [population[i] for i in order[:num_elites]]

            children: List[Genome] = [elite.copy() for elite in elites]
            while len(children) < self.population_size:
                parent_a = population[int(rng.choice(order[: self.population_size // 2]))]
                parent_b = population[int(rng.choice(order[: self.population_size // 2]))]
                child = (
                    self._uniform_crossover(parent_a, parent_b, rng)
                    if rng.random() < self.crossover_rate
                    else parent_a.copy()
                )
                self._mutate(child, tracker, rng)
                children.append(child)

            population = children
            fitnesses = evaluate_genomes(tracker, population)
            if len(fitnesses) < len(population):
                return

    # -- blind genetic operators --------------------------------------------

    @staticmethod
    def _uniform_crossover(a: Genome, b: Genome, rng: np.random.Generator) -> Genome:
        child = a.copy()
        for level_index, level in enumerate(child.levels):
            other = b.levels[level_index]
            if rng.random() < 0.5:
                level.spatial_size = other.spatial_size
            if rng.random() < 0.5:
                level.parallel_dim = other.parallel_dim
            if rng.random() < 0.5:
                level.order = list(other.order)
            for dim in DIMS:
                if rng.random() < 0.5:
                    level.tiles[dim] = other.tiles[dim]
        return child

    def _mutate(self, genome: Genome, tracker: SearchTracker, rng: np.random.Generator) -> None:
        space = tracker.space
        for level_index, level in enumerate(genome.levels):
            if rng.random() < self.mutation_rate:
                level.spatial_size = log_uniform_int(
                    rng, 1, space.spatial_bound(level_index)
                )
            if rng.random() < self.mutation_rate:
                level.parallel_dim = str(rng.choice(DIMS))
            if rng.random() < self.mutation_rate:
                order = list(level.order)
                rng.shuffle(order)
                level.order = order
            for dim in DIMS:
                if rng.random() < self.mutation_rate:
                    level.tiles[dim] = log_uniform_int(rng, 1, space.dim_bounds[dim])
