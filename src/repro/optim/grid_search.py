"""HW-opt baseline: grid search over HW configurations with a fixed mapping.

This reproduces the paper's "Grid-S HW + {dla, shi, eye}-like" scheme: the
mapping is a manually designed dataflow template, and the hardware (PE count
and array aspect ratio; buffers follow from the mapping's requirement) is
swept on a grid under the platform's area budget.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.encoding.genome import Genome
from repro.framework.search import SearchTracker
from repro.mapping.dataflows import get_dataflow
from repro.optim.base import Optimizer
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer, OpType
from repro.workloads.dims import LayerDims


class HardwareGridSearch(Optimizer):
    """Sweep PE count and array shape under a fixed dataflow template."""

    def __init__(self, dataflow: str = "dla"):
        self.dataflow = dataflow
        self.template = get_dataflow(dataflow)
        self.name = f"Grid-S+{dataflow}-like"

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        space = tracker.space
        grid = self._build_grid(space.max_pes, tracker.remaining)
        for pe_array in grid:
            if tracker.exhausted:
                return
            tracker.evaluate_genome(self._template_genome(space, pe_array))

    # -- grid construction ---------------------------------------------------

    @staticmethod
    def _build_grid(max_pes: int, budget: int) -> List[Tuple[int, int]]:
        """PE-array shapes to evaluate: log-spaced totals x aspect-ratio splits."""
        if budget < 1:
            return []
        num_totals = max(4, int(np.sqrt(budget)))
        totals = np.unique(
            np.geomspace(4, max(4, max_pes), num=num_totals).astype(int)
        )
        grid: List[Tuple[int, int]] = []
        for total in totals:
            splits = np.unique(np.geomspace(1, total, num=8).astype(int))
            for rows in splits:
                cols = max(1, int(total) // int(rows))
                grid.append((int(rows), int(cols)))
        # Deduplicate while keeping a deterministic order.
        seen = set()
        unique_grid = []
        for shape in grid:
            if shape not in seen:
                seen.add(shape)
                unique_grid.append(shape)
        return unique_grid[:budget]

    def _template_genome(self, space, pe_array: Tuple[int, int]) -> Genome:
        """Instantiate the dataflow template as a genome for this grid point.

        The template is applied to a synthetic layer whose dimensions are the
        model-wide maxima, so its ``full extent`` tile policies translate to
        the largest tile bounds and clip correctly on every real layer.
        """
        bounds = space.dim_bounds
        synthetic = Layer(
            name="__bounds__",
            op_type=OpType.CONV,
            dims=LayerDims(**{dim: bounds[dim] for dim in DIMS}),
        )
        mapping = self.template(synthetic, pe_array)
        return Genome.from_mapping(mapping)
