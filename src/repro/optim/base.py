"""Common interface of all optimization algorithms."""

from __future__ import annotations

import abc

import numpy as np

from repro.framework.search import SearchTracker


class Optimizer(abc.ABC):
    """Base class for optimization algorithms.

    An optimizer spends the tracker's sampling budget by calling
    ``tracker.evaluate_genome`` or ``tracker.evaluate_vector``; the tracker
    records the best design point, so ``run`` does not return anything.
    Implementations should stop when ``tracker.exhausted`` becomes true;
    evaluating past the budget raises
    :class:`~repro.framework.search.BudgetExhausted`, which the framework
    treats as normal termination.
    """

    #: Display name used in experiment tables.
    name: str = "optimizer"

    @abc.abstractmethod
    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """Search the design space until the sampling budget is exhausted."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
