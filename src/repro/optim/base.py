"""Common interface of all optimization algorithms."""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.encoding.genome import Genome
from repro.framework.search import SearchTracker


def evaluate_genomes(tracker: SearchTracker, genomes: Sequence[Genome]) -> List[float]:
    """Score a population through the tracker's batched view.

    Falls back to one-by-one evaluation for tracker stubs without a batch
    API.  Either way the returned list is truncated when the sampling
    budget runs out mid-population; callers should stop in that case.
    """
    batch = getattr(tracker, "evaluate_batch", None)
    if batch is not None:
        return batch(genomes)
    fitnesses: List[float] = []
    for genome in genomes:
        if tracker.exhausted:
            break
        fitnesses.append(tracker.evaluate_genome(genome))
    return fitnesses


def evaluate_vectors(
    tracker: SearchTracker, vectors: Sequence[np.ndarray]
) -> List[float]:
    """Vector-view counterpart of :func:`evaluate_genomes`."""
    batch = getattr(tracker, "evaluate_vector_batch", None)
    if batch is not None:
        return batch(vectors)
    fitnesses: List[float] = []
    for vector in vectors:
        if tracker.exhausted:
            break
        fitnesses.append(tracker.evaluate_vector(vector))
    return fitnesses


class Optimizer(abc.ABC):
    """Base class for optimization algorithms.

    An optimizer spends the tracker's sampling budget by calling
    ``tracker.evaluate_genome`` or ``tracker.evaluate_vector``; the tracker
    records the best design point, so ``run`` does not return anything.
    Implementations should stop when ``tracker.exhausted`` becomes true;
    evaluating past the budget raises
    :class:`~repro.framework.search.BudgetExhausted`, which the framework
    treats as normal termination.
    """

    #: Display name used in experiment tables.
    name: str = "optimizer"

    @abc.abstractmethod
    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """Search the design space until the sampling budget is exhausted."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
