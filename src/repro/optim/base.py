"""Common interface of all optimization algorithms."""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.encoding.genome import Genome
from repro.framework.search import SearchTracker


def checkpoint_generation(
    tracker: SearchTracker, state: Callable[[], Dict[str, Any]]
) -> None:
    """Announce a generation boundary to the tracker, if it supports them.

    Checkpointable loops call this as the first statement of every
    ``while not tracker.exhausted`` iteration, passing a zero-argument
    callable that captures the loop's JSON-able state.  Tracker stubs
    without the hook (plain fitness functions in unit tests) are a no-op.
    """
    hook = getattr(tracker, "checkpoint_generation", None)
    if hook is not None:
        hook(state)


def resume_state(
    tracker: SearchTracker, kind: str
) -> Optional[Dict[str, Any]]:
    """The tracker's restored loop state for this optimizer, or None.

    Consumes ``tracker.resume_state`` (set by a checkpoint restore) after
    validating that the stored ``kind`` matches the running loop — a
    checkpoint taken under one optimizer must never silently seed another.
    """
    state = getattr(tracker, "resume_state", None)
    if state is None:
        return None
    tracker.resume_state = None
    found = state.get("kind")
    if found != kind:
        raise ValueError(
            f"checkpoint holds {found!r} loop state, this loop is {kind!r}"
        )
    return state


def reject_resume(tracker: SearchTracker) -> None:
    """Fail loudly when restored loop state reaches a non-resumable loop.

    A checkpoint restore also rewinds the tracker's budget counters, so a
    loop that cannot consume the optimizer state must not quietly run
    "fresh" on a half-spent tracker — that would end anywhere but the
    uninterrupted trajectory.  Only a configuration change between the
    checkpointed run and its resume (e.g. a different engine flipping an
    optimizer off its matrix path) can get here.
    """
    if getattr(tracker, "resume_state", None) is not None:
        raise ValueError(
            "a checkpoint was restored but this search configuration "
            "cannot resume it; rerun the original configuration or clear "
            "the checkpoint directory"
        )


def evaluate_genomes(tracker: SearchTracker, genomes: Sequence[Genome]) -> List[float]:
    """Score a population through the tracker's batched view.

    Falls back to one-by-one evaluation for tracker stubs without a batch
    API.  Either way the returned list is truncated when the sampling
    budget runs out mid-population; callers should stop in that case.
    """
    batch = getattr(tracker, "evaluate_batch", None)
    if batch is not None:
        return batch(genomes)
    fitnesses: List[float] = []
    for genome in genomes:
        if tracker.exhausted:
            break
        fitnesses.append(tracker.evaluate_genome(genome))
    return fitnesses


def evaluate_vectors(
    tracker: SearchTracker, vectors: Sequence[np.ndarray]
) -> List[float]:
    """Vector-view counterpart of :func:`evaluate_genomes`."""
    batch = getattr(tracker, "evaluate_vector_batch", None)
    if batch is not None:
        return batch(vectors)
    fitnesses: List[float] = []
    for vector in vectors:
        if tracker.exhausted:
            break
        fitnesses.append(tracker.evaluate_vector(vector))
    return fitnesses


class Optimizer(abc.ABC):
    """Base class for optimization algorithms.

    An optimizer spends the tracker's sampling budget by calling
    ``tracker.evaluate_genome`` or ``tracker.evaluate_vector``; the tracker
    records the best design point, so ``run`` does not return anything.
    Implementations should stop when ``tracker.exhausted`` becomes true;
    evaluating past the budget raises
    :class:`~repro.framework.search.BudgetExhausted`, which the framework
    treats as normal termination.
    """

    #: Display name used in experiment tables.
    name: str = "optimizer"

    #: True when the optimizer's loop participates in the checkpoint
    #: protocol (calls :func:`checkpoint_generation` and can consume
    #: :func:`resume_state`).  The framework only creates checkpoint
    #: stores/sessions for optimizers that declare support; others run
    #: fresh on every attempt and observe interrupts at job boundaries.
    supports_checkpoint: bool = False

    @abc.abstractmethod
    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """Search the design space until the sampling budget is exhausted."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
