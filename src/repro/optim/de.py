"""Differential evolution (DE/rand/1/bin) baseline."""

from __future__ import annotations

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import (
    Optimizer,
    checkpoint_generation,
    evaluate_vectors,
    resume_state,
)


class DifferentialEvolution(Optimizer):
    """Standard DE/rand/1/bin over the flat vector encoding.

    The algorithm is generational: every generation's trial vectors are
    built from the current population and scored as one batch, then the
    one-to-one selection is applied.  This is the textbook synchronous DE
    and lets the framework evaluate whole generations in a single call —
    trial batches decode straight into gene-matrix rows inside
    :meth:`~repro.framework.search.SearchTracker.evaluate_vector_batch`, so
    DE rides the population data path without building ``Genome`` objects.
    The index/crossover draws stay per-member: their interleaved RNG
    stream is part of the pinned search trajectories.
    """

    name = "DE"
    supports_checkpoint = True

    def __init__(
        self,
        population_size: int = 30,
        differential_weight: float = 0.6,
        crossover_rate: float = 0.8,
    ):
        if population_size < 4:
            raise ValueError("DE needs a population of at least 4")
        if not 0.0 < differential_weight <= 2.0:
            raise ValueError("differential_weight must be in (0, 2]")
        if not 0.0 < crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in (0, 1]")
        self.population_size = population_size
        self.differential_weight = differential_weight
        self.crossover_rate = crossover_rate

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        dimension = tracker.vector_dimension
        state = resume_state(tracker, "de")
        if state is not None:
            population = np.asarray(state["population"], dtype=float)
            fitness = np.asarray(state["fitness"], dtype=float)
        else:
            population = rng.random((self.population_size, dimension))
            fitness = np.asarray(
                evaluate_vectors(tracker, list(population)), dtype=float
            )
            if fitness.size < self.population_size:
                return

        def loop_state():
            return {
                "kind": "de",
                "population": population.tolist(),
                "fitness": fitness.tolist(),
            }

        while not tracker.exhausted:
            checkpoint_generation(tracker, loop_state)
            trials = np.empty_like(population)
            for index in range(self.population_size):
                candidates = [i for i in range(self.population_size) if i != index]
                a, b, c = rng.choice(candidates, size=3, replace=False)
                mutant = population[a] + self.differential_weight * (
                    population[b] - population[c]
                )
                mutant = np.clip(mutant, 0.0, 1.0)

                cross = rng.random(dimension) < self.crossover_rate
                cross[rng.integers(dimension)] = True
                trials[index] = np.where(cross, mutant, population[index])

            trial_fitness = evaluate_vectors(tracker, list(trials))
            for index, value in enumerate(trial_fitness):
                if value >= fitness[index]:
                    population[index] = trials[index]
                    fitness[index] = value
            if len(trial_fitness) < self.population_size:
                return
