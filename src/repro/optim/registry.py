"""Registry of optimization algorithms by the names used in the paper."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.optim.base import Optimizer
from repro.optim.cma import CMAES
from repro.optim.de import DifferentialEvolution
from repro.optim.digamma import DiGamma
from repro.optim.gamma import GammaMapper
from repro.optim.nsga2 import NSGA2
from repro.optim.one_plus_one import OnePlusOneES
from repro.optim.portfolio import PassivePortfolio
from repro.optim.pso import ParticleSwarm
from repro.optim.random_search import RandomSearch
from repro.optim.std_ga import StandardGA
from repro.optim.tbpsa import TBPSA

_FACTORIES: Dict[str, Callable[[], Optimizer]] = {
    "random": RandomSearch,
    "stdga": StandardGA,
    "pso": ParticleSwarm,
    "tbpsa": TBPSA,
    "(1+1)-es": OnePlusOneES,
    "de": DifferentialEvolution,
    "portfolio": PassivePortfolio,
    "cma": CMAES,
    "digamma": DiGamma,
    "gamma": GammaMapper,
    "nsga2": NSGA2,
}

_ALIASES: Dict[str, str] = {
    "random search": "random",
    "standard ga": "stdga",
    "std-ga": "stdga",
    "one-plus-one": "(1+1)-es",
    "oneplusone": "(1+1)-es",
    "1+1": "(1+1)-es",
    "cma-es": "cma",
    "cmaes": "cma",
    "differential evolution": "de",
    "nsga-ii": "nsga2",
    "nsga": "nsga2",
}


def available_optimizers() -> List[str]:
    """Canonical optimizer names, in the paper's presentation order."""
    return list(_FACTORIES)


def optimizer_class(name: str) -> Callable[..., Optimizer]:
    """Resolve an optimizer class by name without instantiating it."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown optimizer {name!r}; available: {', '.join(available_optimizers())}"
        )
    return _FACTORIES[key]


def get_optimizer(name: str) -> Optimizer:
    """Instantiate an optimizer by name (case-insensitive, aliases accepted)."""
    return optimizer_class(name)()
