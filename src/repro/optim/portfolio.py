"""Passive portfolio baseline.

A passive portfolio splits the sampling budget evenly across a fixed set of
member algorithms and reports the best design any of them found.  The
member set mirrors the spirit of nevergrad's ``Portfolio`` optimizer:
a discrete/evolutionary method, a differential-evolution method and a
direct-search method.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.encoding.genome import Genome

from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer, evaluate_genomes, evaluate_vectors
from repro.optim.de import DifferentialEvolution
from repro.optim.one_plus_one import OnePlusOneES
from repro.optim.pso import ParticleSwarm


class _BudgetSlice:
    """View of a tracker that exposes only a slice of the remaining budget.

    The batched evaluation views are forwarded so population-based members
    (DE, PSO, GAs) keep the fast path — whole generations scored in one
    evaluator call — instead of silently degrading to one-by-one
    evaluation.  Batches are truncated to the slice's remaining allowance,
    and the slice is charged for the number of results actually returned
    (the underlying tracker may truncate further), so a cut-short batch
    never overcharges the member.
    """

    def __init__(self, tracker: SearchTracker, allowed: int):
        self._tracker = tracker
        self._allowed = allowed
        self._used = 0
        # Delegate the attributes optimizers read directly.
        self.space = tracker.space
        self.codec = tracker.codec
        self.vector_dimension = tracker.vector_dimension

    @property
    def exhausted(self) -> bool:
        return self._used >= self._allowed or self._tracker.exhausted

    @property
    def remaining(self) -> int:
        return max(0, min(self._allowed - self._used, self._tracker.remaining))

    def evaluate_genome(self, genome) -> float:
        self._used += 1
        return self._tracker.evaluate_genome(genome)

    def evaluate_vector(self, vector) -> float:
        self._used += 1
        return self._tracker.evaluate_vector(vector)

    def evaluate_batch(self, genomes: Sequence[Genome]) -> List[float]:
        fitnesses = evaluate_genomes(self._tracker, list(genomes)[: self.remaining])
        self._used += len(fitnesses)
        return fitnesses

    def evaluate_vector_batch(self, vectors: Sequence[np.ndarray]) -> List[float]:
        fitnesses = evaluate_vectors(self._tracker, list(vectors)[: self.remaining])
        self._used += len(fitnesses)
        return fitnesses


class PassivePortfolio(Optimizer):
    """Run several member optimizers on equal shares of the budget."""

    name = "Portfolio"

    def __init__(self, members: Optional[Sequence[Optimizer]] = None):
        self.members: List[Optimizer] = (
            list(members)
            if members is not None
            else [OnePlusOneES(), DifferentialEvolution(), ParticleSwarm()]
        )
        if not self.members:
            raise ValueError("a portfolio needs at least one member")

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        share = max(1, tracker.remaining // len(self.members))
        for index, member in enumerate(self.members):
            if tracker.exhausted:
                return
            allowed = share if index < len(self.members) - 1 else tracker.remaining
            member_rng = np.random.default_rng(rng.integers(2**31 - 1))
            member.run(_BudgetSlice(tracker, allowed), member_rng)
