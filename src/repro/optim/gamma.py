"""GAMMA: the mapping-only genetic algorithm baseline.

GAMMA (ICCAD 2020) searches mappings for a *fixed* hardware configuration.
DiGamma's mapping operators are adapted from GAMMA, so the faithful way to
reproduce the baseline is to run the same GA with the HW operators disabled
and the HW genes pinned by the framework's Fixed-HW constraint.
"""

from __future__ import annotations

from typing import Optional

from repro.optim.digamma.algorithm import DiGamma, DiGammaHyperParameters


class GammaMapper(DiGamma):
    """Mapping-space GA for a fixed hardware configuration.

    Use together with ``CoOptimizationFramework(..., fixed_hardware=...)``:
    the genome space pins the PE array to the fixed hardware, and this class
    disables the Mutate-HW operator so only tiling, order, parallelism and
    clustering genes are perturbed — exactly GAMMA's scope (paper Fig. 1).
    """

    name = "GAMMA"

    def __init__(self, hyper_parameters: Optional[DiGammaHyperParameters] = None):
        super().__init__(
            hyper_parameters=hyper_parameters,
            use_hw_operators=False,
            use_structured_operators=True,
        )
