"""Test-based population-size adaptation (TBPSA) baseline.

TBPSA is a population-based evolution strategy designed for noisy
optimization: it keeps a Gaussian search distribution whose mean and step
size are re-estimated from the best half of each population, and it grows
the population over time to average out noise.  This is a faithful
simplified re-implementation of the algorithm as popularised by the
nevergrad library, which the paper uses as its TBPSA baseline.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer


class TBPSA(Optimizer):
    """Population-size-adaptive (mu/mu, lambda) evolution strategy."""

    name = "TBPSA"

    def __init__(
        self,
        initial_population: Optional[int] = None,
        initial_sigma: float = 0.25,
        growth: float = 1.2,
    ):
        if initial_sigma <= 0:
            raise ValueError("initial_sigma must be positive")
        if growth < 1.0:
            raise ValueError("growth must be >= 1.0")
        self.initial_population = initial_population
        self.initial_sigma = initial_sigma
        self.growth = growth

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        dimension = tracker.vector_dimension
        lam = self.initial_population or (4 + int(3 * math.log(dimension)))
        sigma = self.initial_sigma
        mean = rng.random(dimension)
        stagnation = 0
        best_seen = -np.inf

        while not tracker.exhausted:
            mu = max(1, lam // 2)
            candidates = []
            fitnesses = []
            for _ in range(lam):
                if tracker.exhausted:
                    return
                candidate = np.clip(
                    mean + sigma * rng.standard_normal(dimension), 0.0, 1.0
                )
                candidates.append(candidate)
                fitnesses.append(tracker.evaluate_vector(candidate))

            order = np.argsort(fitnesses)[::-1][:mu]
            elite = np.array([candidates[i] for i in order])
            new_mean = elite.mean(axis=0)

            # Step-size update: shrink when the mean stops moving, grow the
            # population when progress stalls (the "test-based" adaptation).
            movement = float(np.linalg.norm(new_mean - mean))
            mean = new_mean
            sigma = float(np.clip(0.9 * sigma + 0.3 * movement, 1e-4, 0.5))

            generation_best = max(fitnesses)
            if generation_best > best_seen:
                best_seen = generation_best
                stagnation = 0
            else:
                stagnation += 1
                if stagnation >= 2:
                    lam = int(math.ceil(lam * self.growth))
                    stagnation = 0
