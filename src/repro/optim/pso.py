"""Particle swarm optimization baseline."""

from __future__ import annotations

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import (
    Optimizer,
    checkpoint_generation,
    evaluate_vectors,
    resume_state,
)


class ParticleSwarm(Optimizer):
    """Global-best PSO with inertia weight on the flat vector encoding.

    The swarm is updated synchronously: every sweep moves all particles
    against the global best of the previous sweep, then scores the whole
    swarm as one batch.  This is the textbook synchronous PSO and lets the
    framework evaluate whole generations in a single call.
    """

    name = "PSO"
    supports_checkpoint = True

    def __init__(
        self,
        swarm_size: int = 30,
        inertia: float = 0.72,
        cognitive: float = 1.5,
        social: float = 1.5,
        velocity_clamp: float = 0.3,
    ):
        if swarm_size < 2:
            raise ValueError("swarm_size must be >= 2")
        self.swarm_size = swarm_size
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.velocity_clamp = velocity_clamp

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        dimension = tracker.vector_dimension
        state = resume_state(tracker, "pso")
        if state is not None:
            positions = np.asarray(state["positions"], dtype=float)
            velocities = np.asarray(state["velocities"], dtype=float)
            personal_best = np.asarray(state["personal_best"], dtype=float)
            personal_fitness = np.asarray(
                state["personal_fitness"], dtype=float
            )
            global_best = np.asarray(state["global_best"], dtype=float)
            global_fitness = float(state["global_fitness"])
        else:
            positions = rng.random((self.swarm_size, dimension))
            velocities = (rng.random((self.swarm_size, dimension)) - 0.5) * 0.1
            personal_best = positions.copy()
            personal_fitness = np.full(self.swarm_size, -np.inf)

            global_best = positions[0].copy()
            global_fitness = -np.inf

            fitnesses = evaluate_vectors(tracker, list(positions))
            for index, fitness in enumerate(fitnesses):
                personal_fitness[index] = fitness
                if fitness > global_fitness:
                    global_fitness = fitness
                    global_best = positions[index].copy()
            if len(fitnesses) < self.swarm_size:
                return

        def loop_state():
            return {
                "kind": "pso",
                "positions": positions.tolist(),
                "velocities": velocities.tolist(),
                "personal_best": personal_best.tolist(),
                "personal_fitness": personal_fitness.tolist(),
                "global_best": global_best.tolist(),
                "global_fitness": global_fitness,
            }

        while not tracker.exhausted:
            checkpoint_generation(tracker, loop_state)
            # One batched draw per sweep: rng.random((n, 2, d)) fills in C
            # order, which is exactly the per-particle cognitive-then-social
            # sequence the scalar loop drew — same stream, and the whole
            # swarm update becomes three array expressions whose elementwise
            # operation order matches the per-particle arithmetic, so
            # positions (and therefore trajectories) are bit-identical.
            draws = rng.random((self.swarm_size, 2, dimension))
            velocities = (
                self.inertia * velocities
                + self.cognitive * draws[:, 0] * (personal_best - positions)
                + self.social * draws[:, 1] * (global_best - positions)
            )
            velocities = np.clip(
                velocities, -self.velocity_clamp, self.velocity_clamp
            )
            positions = np.clip(positions + velocities, 0.0, 1.0)

            fitnesses = evaluate_vectors(tracker, list(positions))
            for index, fitness in enumerate(fitnesses):
                if fitness > personal_fitness[index]:
                    personal_fitness[index] = fitness
                    personal_best[index] = positions[index].copy()
                if fitness > global_fitness:
                    global_fitness = fitness
                    global_best = positions[index].copy()
            if len(fitnesses) < self.swarm_size:
                return
