"""Hyper-parameter tuning for DiGamma.

The paper tunes DiGamma's hyper-parameters (mutation/crossover rates, elite
ratio, population-to-generation ratio) with a Bayesian-optimization loop.
Offline and dependency-free, this module provides the same capability with a
random-search tuner over the hyper-parameter space: each trial runs a full
(small-budget) DiGamma search on a pilot model and keeps the configuration
with the best resulting latency.  Random search is a strong baseline for
low-dimensional hyper-parameter spaces and preserves the workflow: tune once
on a pilot task, reuse everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.arch.platform import Platform
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.objective import Objective
from repro.optim.digamma.algorithm import DiGamma, DiGammaHyperParameters
from repro.workloads.model import Model


@dataclass(frozen=True)
class TuningTrial:
    """One evaluated hyper-parameter configuration."""

    hyper_parameters: DiGammaHyperParameters
    objective_value: float
    found_valid: bool


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning run."""

    best: DiGammaHyperParameters
    best_objective_value: float
    trials: Tuple[TuningTrial, ...]

    def summary(self) -> str:
        """One-line description of the winning configuration."""
        best = self.best
        return (
            f"best objective {self.best_objective_value:.3e} with "
            f"population={best.population_size}, elite={best.elite_ratio:.2f}, "
            f"crossover={best.crossover_rate:.2f}, mutate_map={best.mutate_map_rate:.2f}, "
            f"mutate_hw={best.mutate_hw_rate:.2f}"
        )


def sample_hyper_parameters(rng: np.random.Generator) -> DiGammaHyperParameters:
    """Draw one random hyper-parameter configuration from sensible ranges."""
    return DiGammaHyperParameters(
        population_size=int(rng.choice([20, 30, 40, 60, 80, 100])),
        elite_ratio=float(rng.uniform(0.05, 0.25)),
        crossover_rate=float(rng.uniform(0.3, 0.9)),
        reorder_rate=float(rng.uniform(0.1, 0.5)),
        grow_rate=float(rng.uniform(0.2, 0.6)),
        mutate_map_rate=float(rng.uniform(0.3, 0.7)),
        mutate_hw_rate=float(rng.uniform(0.1, 0.5)),
        immigration_ratio=float(rng.uniform(0.0, 0.15)),
    )


def tune_digamma(
    model: Model,
    platform: Platform,
    trials: int = 12,
    sampling_budget: int = 1000,
    objective: Objective = Objective.LATENCY,
    seed: int = 0,
    include_default: bool = True,
) -> TuningResult:
    """Random-search tuning of DiGamma's hyper-parameters on a pilot task.

    Parameters
    ----------
    model / platform / objective:
        The pilot task each trial optimizes.
    trials:
        Number of hyper-parameter configurations to evaluate.
    sampling_budget:
        Sampling budget given to each trial's DiGamma search.
    include_default:
        Also evaluate the library's default configuration, so tuning can
        only improve on it.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = np.random.default_rng(seed)
    framework = CoOptimizationFramework(model, platform, objective=objective)

    candidates: List[DiGammaHyperParameters] = []
    if include_default:
        candidates.append(DiGammaHyperParameters())
    while len(candidates) < trials:
        candidates.append(sample_hyper_parameters(rng))

    evaluated: List[TuningTrial] = []
    for index, hyper_parameters in enumerate(candidates):
        search = framework.search(
            DiGamma(hyper_parameters=hyper_parameters),
            sampling_budget=sampling_budget,
            seed=seed + index,
        )
        evaluated.append(
            TuningTrial(
                hyper_parameters=hyper_parameters,
                objective_value=search.best_objective_value,
                found_valid=search.found_valid,
            )
        )

    best_trial = min(evaluated, key=lambda trial: trial.objective_value)
    return TuningResult(
        best=best_trial.hyper_parameters,
        best_objective_value=best_trial.objective_value,
        trials=tuple(evaluated),
    )
