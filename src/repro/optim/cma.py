"""Covariance matrix adaptation evolution strategy (CMA-ES).

A clean from-scratch implementation of standard (mu/mu_w, lambda)-CMA-ES
with cumulative step-size adaptation and rank-one / rank-mu covariance
updates, operating on the flat vector encoding in ``[0, 1]^n``.  CMA is the
strongest generic baseline in the paper (values in Fig. 5 are normalized to
it).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer


class CMAES(Optimizer):
    """Standard CMA-ES with restarts when the step size collapses."""

    name = "CMA"

    def __init__(
        self,
        population_size: Optional[int] = None,
        initial_sigma: float = 0.25,
        restart_sigma_threshold: float = 1e-5,
    ):
        if initial_sigma <= 0:
            raise ValueError("initial_sigma must be positive")
        self.population_size = population_size
        self.initial_sigma = initial_sigma
        self.restart_sigma_threshold = restart_sigma_threshold

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        while not tracker.exhausted:
            self._run_once(tracker, rng)

    # -- one CMA-ES restart ------------------------------------------------

    def _run_once(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        dimension = tracker.vector_dimension
        lam = self.population_size or (4 + int(3 * math.log(dimension)))
        mu = lam // 2
        raw_weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights = raw_weights / raw_weights.sum()
        mu_eff = 1.0 / float(np.sum(weights**2))

        c_sigma = (mu_eff + 2.0) / (dimension + mu_eff + 5.0)
        d_sigma = (
            1.0
            + 2.0 * max(0.0, math.sqrt((mu_eff - 1.0) / (dimension + 1.0)) - 1.0)
            + c_sigma
        )
        c_c = (4.0 + mu_eff / dimension) / (dimension + 4.0 + 2.0 * mu_eff / dimension)
        c_1 = 2.0 / ((dimension + 1.3) ** 2 + mu_eff)
        c_mu = min(
            1.0 - c_1,
            2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((dimension + 2.0) ** 2 + mu_eff),
        )
        chi_n = math.sqrt(dimension) * (
            1.0 - 1.0 / (4.0 * dimension) + 1.0 / (21.0 * dimension**2)
        )

        mean = rng.random(dimension)
        sigma = self.initial_sigma
        covariance = np.eye(dimension)
        path_sigma = np.zeros(dimension)
        path_c = np.zeros(dimension)
        eigenvalues = np.ones(dimension)
        eigenvectors = np.eye(dimension)
        generation = 0

        while not tracker.exhausted:
            generation += 1
            if generation % max(1, int(1.0 / (10.0 * dimension * (c_1 + c_mu)))) == 1:
                eigenvalues, eigenvectors = self._decompose(covariance)

            sqrt_eigenvalues = np.sqrt(eigenvalues)
            samples = []
            fitnesses = []
            for _ in range(lam):
                if tracker.exhausted:
                    return
                z = rng.standard_normal(dimension)
                step = eigenvectors @ (sqrt_eigenvalues * z)
                candidate = np.clip(mean + sigma * step, 0.0, 1.0)
                samples.append((candidate, z))
                fitnesses.append(tracker.evaluate_vector(candidate))

            order = np.argsort(fitnesses)[::-1][:mu]
            selected = [samples[i] for i in order]

            old_mean = mean
            mean = np.sum(
                [w * candidate for w, (candidate, _) in zip(weights, selected)], axis=0
            )
            mean = np.clip(mean, 0.0, 1.0)

            z_mean = np.sum([w * z for w, (_, z) in zip(weights, selected)], axis=0)
            path_sigma = (1.0 - c_sigma) * path_sigma + math.sqrt(
                c_sigma * (2.0 - c_sigma) * mu_eff
            ) * (eigenvectors @ z_mean)

            sigma *= math.exp(
                (c_sigma / d_sigma) * (np.linalg.norm(path_sigma) / chi_n - 1.0)
            )
            sigma = float(np.clip(sigma, 1e-8, 1.0))

            h_sigma = 1.0 if np.linalg.norm(path_sigma) / math.sqrt(
                1.0 - (1.0 - c_sigma) ** (2.0 * generation)
            ) < (1.4 + 2.0 / (dimension + 1.0)) * chi_n else 0.0
            displacement = (mean - old_mean) / max(sigma, 1e-12)
            path_c = (1.0 - c_c) * path_c + h_sigma * math.sqrt(
                c_c * (2.0 - c_c) * mu_eff
            ) * displacement

            rank_mu = np.zeros_like(covariance)
            for w, (candidate, _) in zip(weights, selected):
                y = (candidate - old_mean) / max(sigma, 1e-12)
                rank_mu += w * np.outer(y, y)
            covariance = (
                (1.0 - c_1 - c_mu) * covariance
                + c_1
                * (
                    np.outer(path_c, path_c)
                    + (1.0 - h_sigma) * c_c * (2.0 - c_c) * covariance
                )
                + c_mu * rank_mu
            )

            if sigma < self.restart_sigma_threshold:
                return

    @staticmethod
    def _decompose(covariance: np.ndarray) -> tuple:
        symmetric = (covariance + covariance.T) / 2.0
        eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
        eigenvalues = np.clip(eigenvalues, 1e-12, None)
        return eigenvalues, eigenvectors
