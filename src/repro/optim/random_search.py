"""Pure random search baseline."""

from __future__ import annotations

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer, checkpoint_generation, resume_state

#: Samples drawn per batched evaluation call.
_CHUNK = 64


def _chunk_state():
    # Random search carries no loop state between chunks: the RNG stream
    # and the tracker bookkeeping (both checkpointed by the session) are
    # the whole search.
    return {"kind": "random"}


class RandomSearch(Optimizer):
    """Sample independent random design points until the budget runs out.

    Half the samples are drawn from the structured genome sampler (which is
    biased towards legal PE counts) and half from the uniform vector space,
    matching how a practitioner would randomise over the flat encoding.
    Samples are scored in chunks so the evaluation engine sees batches, but
    the sample stream is identical to drawing them one at a time.
    """

    name = "Random"
    supports_checkpoint = True

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        resume_state(tracker, "random")
        batch = getattr(tracker, "evaluate_batch", None)
        while not tracker.exhausted:
            checkpoint_generation(tracker, _chunk_state)
            chunk = min(_CHUNK, tracker.remaining)
            samples = []
            for _ in range(chunk):
                if rng.random() < 0.5:
                    samples.append((True, tracker.space.random_genome(rng)))
                else:
                    samples.append((False, tracker.codec.random_vector(rng)))
            if batch is not None:
                batch(
                    [
                        sample if is_genome else tracker.codec.decode(sample)
                        for is_genome, sample in samples
                    ]
                )
                continue
            for is_genome, sample in samples:
                if tracker.exhausted:
                    break
                if is_genome:
                    tracker.evaluate_genome(sample)
                else:
                    tracker.evaluate_vector(sample)
