"""Pure random search baseline."""

from __future__ import annotations

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer


class RandomSearch(Optimizer):
    """Sample independent random design points until the budget runs out.

    Half the samples are drawn from the structured genome sampler (which is
    biased towards legal PE counts) and half from the uniform vector space,
    matching how a practitioner would randomise over the flat encoding.
    """

    name = "Random"

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        while not tracker.exhausted:
            if rng.random() < 0.5:
                tracker.evaluate_genome(tracker.space.random_genome(rng))
            else:
                tracker.evaluate_vector(tracker.codec.random_vector(rng))
