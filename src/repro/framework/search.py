"""Search bookkeeping shared by every optimization algorithm.

The paper's Optimization Block exposes one knob to all algorithms: the
sampling budget.  :class:`SearchTracker` enforces that budget, counts
evaluations, records the best design point found so far and offers both the
genome view and the flat-vector view of the encoding, so any algorithm can
be plugged in without touching the framework.  Population-based algorithms
should prefer the batched views (:meth:`SearchTracker.evaluate_batch` /
:meth:`SearchTracker.evaluate_vector_batch`): whole generations are scored
in one evaluator call, which keeps the memoized evaluation engine hot and
lets the evaluator fan the work out over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cost.cache import CacheStats
from repro.encoding.genome import Genome, GenomeSpace
from repro.encoding.genome_matrix import GenomeMatrix, repaired_matrix
from repro.encoding.repair import repaired_copy
from repro.encoding.vector_codec import VectorCodec
from repro.framework.evaluator import DesignEvaluator, EvaluationResult
from repro.framework.pareto import ParetoArchive


class BudgetExhausted(RuntimeError):
    """Raised when an optimizer requests an evaluation beyond the budget."""


class SearchInterrupted(RuntimeError):
    """Raised at a generation boundary when an interrupt was requested.

    Unlike :class:`BudgetExhausted` this is *not* swallowed by the
    framework: it propagates to the caller (the sweep runner records an
    ``interrupted`` result), leaving the just-written checkpoint on disk
    so a later run resumes instead of restarting.
    """


class SearchTracker:
    """Budget-enforcing fitness function with best-so-far tracking."""

    def __init__(
        self,
        evaluator: DesignEvaluator,
        space: GenomeSpace,
        sampling_budget: int,
        archive: Optional[ParetoArchive] = None,
    ):
        if sampling_budget < 1:
            raise ValueError("sampling_budget must be >= 1")
        self.evaluator = evaluator
        self.space = space
        self.codec = VectorCodec(space)
        self.sampling_budget = sampling_budget
        #: Optional Pareto archive fed with every *valid* result carrying an
        #: objective vector, regardless of which optimizer runs: the front
        #: of a search is a property of its evaluations, not its algorithm.
        self.archive = archive
        self.evaluations = 0
        #: Number of calls to the batched evaluation views.
        self.batch_calls = 0
        #: Evaluations performed through the batched views (counted once,
        #: even when a vector batch is routed through the genome batch).
        self.batched_evaluations = 0
        self.best: Optional[EvaluationResult] = None
        #: (evaluation index, best fitness so far) recorded at every improvement.
        self.history: List[Tuple[int, float]] = []
        #: 1-based generation boundary counter, advanced by
        #: :meth:`checkpoint_generation` (0 while in the initial population).
        self.generation = 0
        #: Human-facing label of this run (job id under the sweep runner);
        #: generation-targeted fault specs match against it.
        self.run_label = ""
        #: Attached :class:`~repro.framework.checkpoint.CheckpointSession`,
        #: or None when the search runs without checkpointing.
        self.checkpoint_session = None
        #: Zero-arg callable polled at generation boundaries; truthy means
        #: "checkpoint now and raise :class:`SearchInterrupted`".
        self.interrupt_check = None
        #: Optimizer loop state restored from a checkpoint, consumed once
        #: by the optimizer via :func:`repro.optim.base.resume_state`.
        self.resume_state = None

    # -- budget ------------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Evaluations left in the sampling budget."""
        return max(0, self.sampling_budget - self.evaluations)

    @property
    def exhausted(self) -> bool:
        """True once the sampling budget has been spent."""
        return self.remaining == 0

    # -- evaluation views --------------------------------------------------

    def evaluate_genome(self, genome: Genome) -> float:
        """Evaluate an encoded individual; returns its fitness (higher is better)."""
        self._charge()
        repaired = repaired_copy(genome, self.space)
        result = self.evaluator.evaluate_genome(repaired)
        self._record(result)
        return result.fitness

    def evaluate_vector(self, vector: np.ndarray) -> float:
        """Evaluate a flat ``[0, 1]^n`` vector; returns its fitness."""
        self._charge()
        genome = self.codec.decode(vector)
        repaired = repaired_copy(genome, self.space)
        result = self.evaluator.evaluate_genome(repaired)
        self._record(result)
        return result.fitness

    def evaluate_batch(self, genomes: Sequence[Genome]) -> List[float]:
        """Evaluate a population slice in one call; returns its fitnesses.

        Only as many genomes as the remaining budget allows are evaluated
        (in order), so the returned list may be shorter than the input —
        callers should stop when that happens.  Results are bit-identical
        to evaluating the same genomes one by one.
        """
        return [result.fitness for result in self.evaluate_batch_results(genomes)]

    def evaluate_batch_results(
        self, genomes: Sequence[Genome]
    ) -> List[EvaluationResult]:
        """Batched view returning full results instead of scalar fitnesses.

        Multi-objective algorithms need the per-objective vectors (and the
        decoded designs) of a whole generation; this is the same batched
        fast path as :meth:`evaluate_batch` — one evaluator call, identical
        budget/bookkeeping semantics — just without collapsing each result
        to its scalar fitness.
        """
        batch = list(genomes)[: self.remaining]
        repaired = [repaired_copy(genome, self.space) for genome in batch]
        results = self.evaluator.evaluate_population(repaired)
        self.batch_calls += 1
        self.batched_evaluations += len(results)
        for result in results:
            self.evaluations += 1
            self._record(result)
        return results

    @property
    def prefers_matrix(self) -> bool:
        """True when the gene-matrix views hit the native matrix fast path.

        The scalar engines (and non-two-level hierarchies) evaluate
        matrices by converting back to genomes, so a search loop gains
        nothing from packing its population — optimizers consult this to
        keep the original per-genome loop in those configurations
        (trajectories are bit-identical either way).
        """
        return (
            self.evaluator.engine == "vector" and self.space.num_levels == 2
        )

    def evaluate_matrix(self, matrix: GenomeMatrix) -> List[float]:
        """Evaluate a gene-matrix population in one call; returns fitnesses.

        The matrix-native counterpart of :meth:`evaluate_batch` — same
        budget/truncation semantics, bit-identical fitnesses — fed by the
        population data path: one vectorized repair pass, the evaluator's
        fingerprint-keyed design reuse and delta filter, then the packed
        vector engine.  No per-member ``Genome`` is constructed.
        """
        return [result.fitness for result in self.evaluate_matrix_results(matrix)]

    def evaluate_matrix_results(
        self, matrix: GenomeMatrix
    ) -> List[EvaluationResult]:
        """Gene-matrix view returning full results (multi-objective loops)."""
        batch = matrix.truncated(min(len(matrix), self.remaining))
        if len(batch) == 0:
            self.batch_calls += 1
            return []
        repaired = repaired_matrix(batch, self.space)
        results = self.evaluator.evaluate_matrix(repaired)
        self.batch_calls += 1
        self.batched_evaluations += len(results)
        for result in results:
            self.evaluations += 1
            self._record(result)
        return results

    def evaluate_vector_batch(self, vectors: Sequence[np.ndarray]) -> List[float]:
        """Evaluate a batch of flat vectors; returns their fitnesses.

        Budget semantics match :meth:`evaluate_batch` (truncated to the
        remaining budget).  Vectors decode straight into gene-matrix rows —
        one decoded gene row per vector, no intermediate ``Genome`` — and
        ride the same population data path as :meth:`evaluate_matrix`.
        """
        batch = list(vectors)[: self.remaining]
        if not batch:
            self.batch_calls += 1
            return []
        matrix = self.codec.decode_matrix(batch)
        return self.evaluate_matrix(matrix)

    @property
    def vector_dimension(self) -> int:
        """Length of the flat-vector encoding."""
        return self.codec.dimension

    @property
    def cache_stats(self) -> CacheStats:
        """Combined evaluation-cache counters of the underlying evaluator."""
        return self.evaluator.cache_stats

    # -- generation boundaries ---------------------------------------------

    def checkpoint_generation(self, state) -> None:
        """Mark a generation boundary; the first statement of a loop iteration.

        ``state`` is a zero-argument callable returning the optimizer's
        JSON-able loop-state dict — a callable so normal, uncheckpointed
        runs never pay the serialization cost.  In boundary order: the
        generation counter advances, generation-targeted fault specs fire
        (chaos testing of exactly this machinery), a checkpoint is saved
        when the cadence — or a pending interrupt — calls for one, and a
        pending interrupt then raises :class:`SearchInterrupted`.

        Because this runs *before* the boundary's breeding/evaluation, a
        restore that rewinds the counter by one re-enters the same
        boundary: numbering, cadence and fault matching are identical to
        the uninterrupted run.
        """
        self.generation += 1
        fault_plan = getattr(self.evaluator, "fault_plan", None)
        if fault_plan is not None:
            on_generation = getattr(fault_plan, "on_generation", None)
            if on_generation is not None:
                on_generation(self.run_label, self.generation)
        interrupted = self.interrupt_check is not None and bool(
            self.interrupt_check()
        )
        session = self.checkpoint_session
        if session is not None and (
            interrupted or session.due(self.generation)
        ):
            session.save(self, state())
        if interrupted:
            detail = (
                " (checkpoint saved)" if session is not None else ""
            )
            raise SearchInterrupted(
                f"search interrupted at generation boundary "
                f"{self.generation}{detail}"
            )

    # -- internals ---------------------------------------------------------

    def _charge(self) -> None:
        if self.exhausted:
            raise BudgetExhausted(
                f"sampling budget of {self.sampling_budget} evaluations exhausted"
            )
        self.evaluations += 1

    def _record(self, result: EvaluationResult) -> None:
        if self.best is None or result.fitness > self.best.fitness:
            self.best = result
            self.history.append((self.evaluations, result.fitness))
        if (
            self.archive is not None
            and result.valid
            and result.objective_vector is not None
        ):
            self.archive.add(result)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search run."""

    optimizer_name: str
    best: Optional[EvaluationResult]
    evaluations: int
    sampling_budget: int
    wall_time_seconds: float
    history: Tuple[Tuple[int, float], ...] = field(default_factory=tuple)

    @property
    def found_valid(self) -> bool:
        """True when the search found at least one budget-respecting design."""
        return self.best is not None and self.best.valid

    @property
    def evals_per_second(self) -> float:
        """Search throughput (evaluations per wall-clock second)."""
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.evaluations / self.wall_time_seconds

    @property
    def best_latency(self) -> float:
        """Latency of the best valid design (``inf`` when none was found)."""
        if not self.found_valid:
            return float("inf")
        return self.best.latency

    @property
    def best_latency_area_product(self) -> float:
        """Latency-area product of the best valid design (``inf`` when none)."""
        if not self.found_valid:
            return float("inf")
        return self.best.latency_area_product

    @property
    def best_objective_value(self) -> float:
        """Objective value of the best valid design (``inf`` when none)."""
        if not self.found_valid:
            return float("inf")
        return self.best.objective_value

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.found_valid:
            return (
                f"{self.optimizer_name}: no valid design found "
                f"({self.evaluations}/{self.sampling_budget} samples, "
                f"{self.evals_per_second:.0f} evals/s)"
            )
        return (
            f"{self.optimizer_name}: latency={self.best_latency:.3e} cycles, "
            f"LAP={self.best_latency_area_product:.3e} "
            f"({self.evaluations}/{self.sampling_budget} samples, "
            f"{self.wall_time_seconds:.1f}s, {self.evals_per_second:.0f} evals/s)"
        )
