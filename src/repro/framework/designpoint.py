"""A fully decoded accelerator design point."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import AreaBreakdown
from repro.arch.hardware import HardwareConfig
from repro.cost.performance import ModelPerformance
from repro.mapping.mapping import Mapping, mapping_from_cache_key


@dataclass(frozen=True)
class AcceleratorDesign:
    """HW configuration + mapping + evaluated performance + area.

    This is what the co-optimization framework ultimately returns: the
    decoded counterpart of an encoded individual (paper Fig. 3(d-e)).
    """

    hardware: HardwareConfig
    mapping: Mapping
    performance: ModelPerformance
    area: AreaBreakdown

    @property
    def latency(self) -> float:
        """Total model latency in cycles."""
        return self.performance.latency

    @property
    def energy(self) -> float:
        """Total model energy (normalised units)."""
        return self.performance.energy

    @property
    def latency_area_product(self) -> float:
        """Latency times total area (the paper's secondary metric)."""
        return self.performance.latency * self.area.total

    def describe(self) -> str:
        """Multi-line human-readable description (Fig. 7-style)."""
        pe_pct, buf_pct = self.area.pe_to_buffer_ratio
        lines = [
            f"Hardware: {self.hardware.describe()}",
            f"Area: {self.area.total:.3e} um^2 "
            f"(PE {pe_pct:.0f}% : buffer {buf_pct:.0f}%)",
            f"Latency: {self.latency:.3e} cycles   "
            f"Latency-area product: {self.latency_area_product:.3e}",
            "Mapping:",
        ]
        lines.extend("  " + line for line in self.mapping.describe().splitlines())
        return "\n".join(lines)


class LazyRowMappingDesign(AcceleratorDesign):
    """A design point whose mapping rebuilds from a gene-row fingerprint.

    The gene-matrix evaluation path identifies designs by the raw bytes of
    their repaired :class:`~repro.encoding.genome_matrix.GenomeMatrix` row
    (which carries every gene).  Like :class:`LazyMappingDesign`, the
    mapping only materializes for the handful of designs that are ever
    inspected.
    """

    @staticmethod
    def build(
        hardware: HardwareConfig,
        fingerprint: bytes,
        performance: ModelPerformance,
        area: AreaBreakdown,
    ) -> "LazyRowMappingDesign":
        design = object.__new__(LazyRowMappingDesign)
        design.__dict__.update(
            hardware=hardware,
            performance=performance,
            area=area,
            _fingerprint=fingerprint,
        )
        return design

    @property
    def mapping(self) -> Mapping:
        cached = self.__dict__.get("_mapping")
        if cached is None:
            from repro.encoding.genome_matrix import (
                LEVEL_WIDTH,
                mapping_from_fingerprint,
            )

            fingerprint = self._fingerprint
            num_levels = len(fingerprint) // (8 * LEVEL_WIDTH)
            cached = mapping_from_fingerprint(fingerprint, num_levels)
            self.__dict__["_mapping"] = cached
        return cached


class LazyMappingDesign(AcceleratorDesign):
    """A design point whose :class:`Mapping` materializes on first access.

    The batched population path scores thousands of designs per generation
    while only the few that win a search ever have their mapping inspected
    (serialization, ``describe``); those are rebuilt from the stored cache
    key, which carries every gene.  All other fields behave exactly like
    the eager dataclass.
    """

    @staticmethod
    def build(
        hardware: HardwareConfig,
        mapping_key: tuple,
        performance: ModelPerformance,
        area: AreaBreakdown,
    ) -> "LazyMappingDesign":
        design = object.__new__(LazyMappingDesign)
        design.__dict__.update(
            hardware=hardware,
            performance=performance,
            area=area,
            _mapping_key=mapping_key,
        )
        return design

    @property
    def mapping(self) -> Mapping:
        cached = self.__dict__.get("_mapping")
        if cached is None:
            cached = mapping_from_cache_key(self._mapping_key)
            self.__dict__["_mapping"] = cached
        return cached
