"""A fully decoded accelerator design point."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import AreaBreakdown
from repro.arch.hardware import HardwareConfig
from repro.cost.performance import ModelPerformance
from repro.mapping.mapping import Mapping


@dataclass(frozen=True)
class AcceleratorDesign:
    """HW configuration + mapping + evaluated performance + area.

    This is what the co-optimization framework ultimately returns: the
    decoded counterpart of an encoded individual (paper Fig. 3(d-e)).
    """

    hardware: HardwareConfig
    mapping: Mapping
    performance: ModelPerformance
    area: AreaBreakdown

    @property
    def latency(self) -> float:
        """Total model latency in cycles."""
        return self.performance.latency

    @property
    def energy(self) -> float:
        """Total model energy (normalised units)."""
        return self.performance.energy

    @property
    def latency_area_product(self) -> float:
        """Latency times total area (the paper's secondary metric)."""
        return self.performance.latency * self.area.total

    def describe(self) -> str:
        """Multi-line human-readable description (Fig. 7-style)."""
        pe_pct, buf_pct = self.area.pe_to_buffer_ratio
        lines = [
            f"Hardware: {self.hardware.describe()}",
            f"Area: {self.area.total:.3e} um^2 "
            f"(PE {pe_pct:.0f}% : buffer {buf_pct:.0f}%)",
            f"Latency: {self.latency:.3e} cycles   "
            f"Latency-area product: {self.latency_area_product:.3e}",
            "Mapping:",
        ]
        lines.extend("  " + line for line in self.mapping.describe().splitlines())
        return "\n".join(lines)
