"""Design-space cardinality estimates (paper Sec. II-C).

These functions reproduce the back-of-the-envelope sizes the paper quotes:
a mapping space up to O(10^24), a HW space up to O(10^12) (128x128 PEs,
100 MB of buffer) and their cross product of O(10^36), which is the
motivation for sample-efficient co-optimization.
"""

from __future__ import annotations

import math

from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer


def mapping_space_size(layer: Layer, num_levels: int = 2) -> float:
    """Number of distinct mappings of ``layer`` on a ``num_levels`` hierarchy.

    Per level: every loop order (6!), every choice of parallel dimension (6)
    and every combination of per-dimension tile sizes (product of the
    dimension extents).
    """
    if num_levels < 1:
        raise ValueError("num_levels must be >= 1")
    per_level = math.factorial(len(DIMS)) * len(DIMS)
    tile_choices = 1
    for dim in DIMS:
        tile_choices *= layer.dims[dim]
    per_level *= tile_choices
    return float(per_level) ** num_levels


def hw_space_size(
    max_pe_width: int = 128,
    max_pe_height: int = 128,
    max_buffer_bytes: int = 100 * 1024 * 1024,
    buffer_granularity: int = 1024,
) -> float:
    """Number of distinct HW configurations (paper footnote 1).

    PE array width and height choices times the number of L1 and L2 buffer
    sizings at ``buffer_granularity`` steps.
    """
    if min(max_pe_width, max_pe_height, max_buffer_bytes, buffer_granularity) < 1:
        raise ValueError("all bounds must be positive")
    buffer_steps = max(1, max_buffer_bytes // buffer_granularity)
    return float(max_pe_width) * max_pe_height * buffer_steps * buffer_steps


def total_space_size(layer: Layer, num_levels: int = 2, **hw_kwargs: int) -> float:
    """Cross-product of the mapping and HW spaces for one layer."""
    return mapping_space_size(layer, num_levels) * hw_space_size(**hw_kwargs)
