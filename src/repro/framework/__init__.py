"""HW-Mapping co-optimization framework (the paper's contribution #1)."""

from repro.framework.constraints import ConstraintChecker, ConstraintResult
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.designpoint import AcceleratorDesign
from repro.framework.designspace import hw_space_size, mapping_space_size, total_space_size
from repro.framework.evaluator import DesignEvaluator, EvaluationResult
from repro.framework.objective import (
    Objective,
    ObjectiveSet,
    objective_value,
    objective_vector,
)
from repro.framework.pareto import (
    ParetoArchive,
    ParetoResult,
    crowding_distances,
    dominates,
    fast_non_dominated_sort,
    non_dominated_indices,
)
from repro.framework.search import BudgetExhausted, SearchResult, SearchTracker

__all__ = [
    "ConstraintChecker",
    "ConstraintResult",
    "CoOptimizationFramework",
    "AcceleratorDesign",
    "DesignEvaluator",
    "EvaluationResult",
    "Objective",
    "ObjectiveSet",
    "objective_value",
    "objective_vector",
    "ParetoArchive",
    "ParetoResult",
    "crowding_distances",
    "dominates",
    "fast_non_dominated_sort",
    "non_dominated_indices",
    "BudgetExhausted",
    "SearchResult",
    "SearchTracker",
    "hw_space_size",
    "mapping_space_size",
    "total_space_size",
]
