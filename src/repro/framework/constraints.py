"""Design-budget constraint checking.

The constraint checker (paper Sec. III-B2) invalidates proposed design
points whose required resources exceed the budget; invalid points receive a
penalised fitness so the optimizers are steered back into the feasible
region rather than failing hard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch.area import AreaBreakdown
from repro.arch.hardware import HardwareConfig


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of checking one design point against the budget."""

    valid: bool
    violations: tuple
    #: Ratio of the worst violated resource to its budget (1.0 when valid).
    severity: float

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class ConstraintChecker:
    """Checks area budgets and, optionally, fixed-HW buffer capacities.

    Parameters
    ----------
    area_budget_um2:
        Chip-area budget for PEs plus on-chip buffers.
    fixed_hardware:
        When set (Fixed-HW use case), proposed mappings must also fit the
        existing hardware's L1 and L2 capacities.
    """

    area_budget_um2: float
    fixed_hardware: Optional[HardwareConfig] = None

    def __post_init__(self) -> None:
        if self.area_budget_um2 <= 0:
            raise ValueError("area_budget_um2 must be positive")

    def check(
        self,
        hardware: HardwareConfig,
        area: AreaBreakdown,
        l1_requirement_bytes: int = 0,
        l2_requirement_bytes: int = 0,
    ) -> ConstraintResult:
        """Check one decoded design point.

        ``l1_requirement_bytes`` / ``l2_requirement_bytes`` are the
        mapping's minimum buffer needs; they matter only in Fixed-HW mode,
        where the buffers cannot be grown to match the mapping.
        """
        violations: List[str] = []
        severity = 1.0

        area_ratio = area.total / self.area_budget_um2
        if area_ratio > 1.0:
            violations.append(
                f"area {area.total:.3e} um^2 exceeds budget {self.area_budget_um2:.3e} um^2"
            )
            severity = max(severity, area_ratio)

        if self.fixed_hardware is not None:
            fixed = self.fixed_hardware
            if l1_requirement_bytes > fixed.l1_size:
                ratio = l1_requirement_bytes / fixed.l1_size
                violations.append(
                    f"mapping needs {l1_requirement_bytes} B of L1 per PE, "
                    f"hardware provides {fixed.l1_size} B"
                )
                severity = max(severity, ratio)
            if l2_requirement_bytes > fixed.l2_size:
                ratio = l2_requirement_bytes / fixed.l2_size
                violations.append(
                    f"mapping needs {l2_requirement_bytes} B of L2, "
                    f"hardware provides {fixed.l2_size} B"
                )
                severity = max(severity, ratio)

        return ConstraintResult(
            valid=not violations,
            violations=tuple(violations),
            severity=severity,
        )
