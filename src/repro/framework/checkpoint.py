"""Crash-safe, generation-granular search checkpoints with bit-identical resume.

A long search is all-or-nothing without this module: a preempted worker, a
``--job-timeout`` expiry or a Ctrl-C throws away every priced generation and
the retry restarts from generation zero.  The ingredients for something much
stronger already exist — every optimizer loop is RNG-stream-identical over
the packed gene matrix, and all caches/delta tables are bit-identical
*accelerators* (dropping them never changes results) — so the complete state
of a search at a generation boundary is small and exact:

* the serialized ``np.random.Generator`` bit-generator state,
* the optimizer's loop state (population rows / DE-PSO float arrays /
  NSGA-II ranking vectors),
* the :class:`~repro.framework.search.SearchTracker` bookkeeping (budget
  counters, best-so-far, convergence history, Pareto archive).

Evaluator delta tables and memo caches are deliberately **not** captured:
restoring into a fresh process with cold caches is the tested delta-on/off
invariance, so resume stays bit-identical while checkpoints stay small —
that is the "invalidation token" design (the token is the absence of the
tables).

Durability follows the ``ResultStore`` / ``PersistentLayerCache``
discipline: a checkpoint is one JSON payload behind a versioned header
carrying its SHA-1 digest, written to a temporary file, fsynced and
atomically ``os.replace``d into place — a crash mid-save leaves the previous
checkpoint intact.  Loads verify format, version and digest; anything wrong
quarantines the file to ``<name>.corrupt`` with a
:class:`CheckpointCorruption` warning and the search starts fresh — a
corrupt checkpoint can cost progress, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.framework.pareto import ParetoArchive
from repro.serialization import (
    evaluation_result_from_dict,
    evaluation_result_to_dict,
)

#: On-disk format name; a header naming anything else never deserializes.
FORMAT_NAME = "repro-search-checkpoint"

#: Bump on incompatible payload changes; mismatched versions quarantine.
CHECKPOINT_VERSION = 1


class CheckpointCorruption(UserWarning):
    """Warning category for unreadable/damaged checkpoint files."""


# -- RNG state (de)serialization ----------------------------------------------
#
# ``Generator.bit_generator.state`` is a nested dict of plain ints for PCG64
# (the default_rng family) but may carry NumPy arrays for other bit
# generators (MT19937's key vector), so the converter handles both shapes.


def _jsonify(value: Any) -> Any:
    """Recursively convert a bit-generator state dict to JSON-able types."""
    if isinstance(value, dict):
        return {key: _jsonify(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(entry) for entry in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _dejsonify(value: Any) -> Any:
    """Inverse of :func:`_jsonify`."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        return {key: _dejsonify(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_dejsonify(entry) for entry in value]
    return value


def rng_state_to_jsonable(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's complete bit-generator state, JSON-ready."""
    return _jsonify(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Set a generator's bit-generator state from its serialized form.

    The bit generator validates the ``bit_generator`` name itself, so a
    checkpoint written under a different RNG family fails loudly here.
    """
    rng.bit_generator.state = _dejsonify(state)


# -- the checkpoint payload ----------------------------------------------------


@dataclass(frozen=True)
class SearchCheckpoint:
    """Complete loop state of a search at one generation boundary.

    ``generation`` is the 1-based boundary the checkpoint was taken at;
    resuming re-enters exactly that boundary (the checkpoint hook is the
    first statement of a loop iteration), so the boundary numbering — and
    with it checkpoint cadence and generation-targeted fault matching — is
    identical between an interrupted and an uninterrupted run.
    """

    generation: int
    rng_state: Dict[str, Any]
    optimizer_state: Dict[str, Any]
    tracker_state: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "rng": self.rng_state,
            "optimizer": self.optimizer_state,
            "tracker": self.tracker_state,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchCheckpoint":
        return cls(
            generation=int(data["generation"]),
            rng_state=dict(data["rng"]),
            optimizer_state=dict(data["optimizer"]),
            tracker_state=dict(data["tracker"]),
        )


def checkpoint_slug(text: str) -> str:
    """Filename-safe checkpoint key for an arbitrary run label.

    Job ids contain ``/`` and other separator characters; the slug keeps a
    readable prefix and appends a short digest of the *full* label so two
    labels never collide after sanitization.
    """
    safe = re.sub(r"[^A-Za-z0-9._+=-]+", "_", text).strip("_")[:96]
    digest = hashlib.sha1(text.encode()).hexdigest()[:8]
    return f"{safe}-{digest}" if safe else digest


# -- durable storage -----------------------------------------------------------


class CheckpointStore:
    """One checkpoint file: atomic saves, digest-verified loads, quarantine.

    The file holds two lines: a JSON header (``format`` / ``version`` /
    ``digest`` / ``payload_bytes``) and the JSON payload the digest covers.
    Saves go through a temporary file + ``fsync`` + ``os.replace``, so a
    reader (or a crash) always sees a complete previous or complete new
    checkpoint, never a torn one.
    """

    def __init__(self, directory: Union[str, Path], key: str):
        self.directory = Path(directory)
        self.key = checkpoint_slug(key)
        self.path = self.directory / f"{self.key}.ckpt.json"

    @property
    def corrupt_path(self) -> Path:
        """Where a damaged checkpoint is quarantined for post-mortems."""
        return self.path.with_name(self.path.name + ".corrupt")

    def save(self, checkpoint: SearchCheckpoint) -> None:
        """Atomically persist a checkpoint (replaces any previous one)."""
        payload = json.dumps(checkpoint.to_dict(), sort_keys=True).encode()
        header = json.dumps(
            {
                "format": FORMAT_NAME,
                "version": CHECKPOINT_VERSION,
                "digest": hashlib.sha1(payload).hexdigest(),
                "payload_bytes": len(payload),
            },
            sort_keys=True,
        ).encode()
        data = header + b"\n" + payload + b"\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        staging = self.path.with_name(self.path.name + ".tmp")
        descriptor = os.open(
            staging, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        try:
            view = memoryview(data)
            while view:  # short writes must not tear the staging file
                view = view[os.write(descriptor, view) :]
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
        os.replace(staging, self.path)

    def load(self) -> Optional[SearchCheckpoint]:
        """The stored checkpoint, or ``None`` (missing *or* quarantined).

        Every failure mode — torn file, digest mismatch, unknown version,
        malformed JSON — quarantines the file and returns ``None``: the
        caller starts the search fresh, which is always correct, merely
        slower.
        """
        if not self.path.exists():
            return None
        try:
            raw = self.path.read_bytes()
            head, _, rest = raw.partition(b"\n")
            header = json.loads(head)
            if header.get("format") != FORMAT_NAME:
                raise ValueError(f"unknown format {header.get('format')!r}")
            if header.get("version") != CHECKPOINT_VERSION:
                raise ValueError(
                    f"unsupported version {header.get('version')!r} "
                    f"(expected {CHECKPOINT_VERSION})"
                )
            payload = rest.rstrip(b"\n")
            if len(payload) != int(header["payload_bytes"]):
                raise ValueError(
                    f"payload is {len(payload)} byte(s), header promises "
                    f"{header['payload_bytes']}"
                )
            if hashlib.sha1(payload).hexdigest() != header["digest"]:
                raise ValueError("payload digest mismatch")
            return SearchCheckpoint.from_dict(json.loads(payload))
        except Exception as error:
            self._quarantine(error)
            return None

    def clear(self) -> None:
        """Remove the checkpoint (called when its search completes)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def _quarantine(self, error: Exception) -> None:
        try:
            os.replace(self.path, self.corrupt_path)
            moved = f"quarantined to {self.corrupt_path}"
        except OSError:
            moved = "and could not be quarantined"
        warnings.warn(
            f"{self.path}: unreadable checkpoint ({error}); {moved} — "
            "the search restarts from generation zero",
            CheckpointCorruption,
            stacklevel=3,
        )


# -- the live session a tracker drives -----------------------------------------


class CheckpointSession:
    """Checkpoint writer attached to one running search.

    The tracker calls :meth:`save` at generation boundaries; the session
    applies the ``checkpoint_every`` cadence (interruptions force a save
    regardless) and assembles the full :class:`SearchCheckpoint` from the
    rng, the optimizer's state dict and the tracker's bookkeeping.

    ``close()`` makes every further save a no-op.  The sweep runner closes
    the sessions of a discarded framework so a timed-out search still
    running on its abandoned watchdog thread can no longer touch the
    checkpoint file its retry is resuming from.
    """

    def __init__(
        self,
        store: CheckpointStore,
        rng: np.random.Generator,
        checkpoint_every: int = 1,
    ):
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.store = store
        self.rng = rng
        self.checkpoint_every = checkpoint_every
        #: Checkpoints written by this session (observability for tests).
        self.saves = 0
        self.closed = False

    def due(self, generation: int) -> bool:
        """True when the cadence calls for a save at this boundary."""
        return generation % self.checkpoint_every == 0

    def save(self, tracker, optimizer_state: Dict[str, Any]) -> None:
        """Capture and persist the search state at the current boundary."""
        if self.closed:
            return
        checkpoint = SearchCheckpoint(
            generation=tracker.generation,
            rng_state=rng_state_to_jsonable(self.rng),
            optimizer_state=dict(optimizer_state),
            tracker_state=snapshot_tracker_state(tracker),
        )
        self.store.save(checkpoint)
        self.saves += 1

    def close(self) -> None:
        """Disarm the session; subsequent saves are ignored."""
        self.closed = True


# -- tracker state (de)serialization -------------------------------------------


def snapshot_tracker_state(tracker) -> Dict[str, Any]:
    """The tracker's complete bookkeeping, JSON-ready and lossless.

    ``best`` uses the full evaluation-result payload (valid *or* invalid —
    an invalid best's graded penalty fitness steers early search), and the
    Pareto archive is captured in insertion order, because eviction
    tie-breaking depends on entry order and must survive the round trip.
    """
    state: Dict[str, Any] = {
        "evaluations": tracker.evaluations,
        "batch_calls": tracker.batch_calls,
        "batched_evaluations": tracker.batched_evaluations,
        "history": [[index, fitness] for index, fitness in tracker.history],
        "best": (
            evaluation_result_to_dict(tracker.best)
            if tracker.best is not None
            else None
        ),
    }
    if tracker.archive is not None:
        state["archive"] = {
            "capacity": tracker.archive.capacity,
            "entries": [
                evaluation_result_to_dict(entry)
                for entry in tracker.archive.entries_in_order()
            ],
        }
    return state


def restore_tracker_state(tracker, state: Dict[str, Any]) -> None:
    """Load :func:`snapshot_tracker_state` output into a fresh tracker."""
    tracker.evaluations = int(state["evaluations"])
    tracker.batch_calls = int(state["batch_calls"])
    tracker.batched_evaluations = int(state["batched_evaluations"])
    tracker.history = [
        (int(index), float(fitness)) for index, fitness in state["history"]
    ]
    best = state.get("best")
    tracker.best = (
        evaluation_result_from_dict(best) if best is not None else None
    )
    archive = state.get("archive")
    if archive is not None and tracker.archive is not None:
        restored = ParetoArchive(int(archive["capacity"]))
        restored.restore_entries(
            evaluation_result_from_dict(entry) for entry in archive["entries"]
        )
        tracker.archive = restored


def restore_search_state(
    tracker, rng: np.random.Generator, checkpoint: SearchCheckpoint
) -> None:
    """Rewind a fresh (tracker, rng) pair to a checkpoint's boundary.

    The generation counter is set one *below* the stored boundary: the
    resumed loop's first statement is the same ``checkpoint_generation``
    call that took the snapshot, which re-increments to the stored value —
    boundary numbering, cadence and fault matching line up exactly with the
    uninterrupted run (and the re-save it triggers writes an identical
    checkpoint).
    """
    restore_rng_state(rng, checkpoint.rng_state)
    restore_tracker_state(tracker, checkpoint.tracker_state)
    tracker.generation = checkpoint.generation - 1
    tracker.resume_state = dict(checkpoint.optimizer_state)
