"""The Co-opt Framework front-end.

Ties everything together (paper Fig. 2): take a model, an objective, a
design budget (platform) and optionally a design constraint (fixed HW), and
run any plugged-in optimization algorithm under a sampling budget.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Protocol, Union

import numpy as np

from repro.arch.area import AreaModel
from repro.arch.energy import EnergyModel
from repro.arch.hardware import HardwareConfig
from repro.arch.platform import Platform
from repro.framework.checkpoint import (
    CheckpointSession,
    CheckpointStore,
    restore_search_state,
)
from repro.framework.evaluator import DesignEvaluator
from repro.framework.objective import Objective, ObjectiveSet
from repro.framework.pareto import (
    DEFAULT_ARCHIVE_CAPACITY,
    ParetoArchive,
    ParetoResult,
)
from repro.framework.search import BudgetExhausted, SearchResult, SearchTracker
from repro.workloads.model import Model


class SupportsRun(Protocol):
    """Anything with a ``name`` and a ``run(tracker, rng)`` method.

    This is the whole contract an optimization algorithm must satisfy to be
    plugged into the framework.
    """

    name: str

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """Spend the tracker's sampling budget looking for good designs."""


class CoOptimizationFramework:
    """HW-Mapping co-optimization for one model on one platform.

    Parameters
    ----------
    model:
        Target DNN model.
    platform:
        Edge or cloud platform preset (area budget + bandwidths).
    objective:
        Metric to minimize (latency by default, as in the paper).
    num_levels:
        Cluster levels of the accelerator hierarchy (2 = L2 + L1).
    fixed_hardware:
        Optional design constraint enabling the Fixed-HW use case: only the
        mapping is searched.
    area_model / energy_model / bytes_per_element:
        Technology models forwarded to the evaluator.
    buffer_allocation:
        Buffer allocation strategy forwarded to the evaluator
        (``"exact"`` or ``"fill"``).
    use_cache / workers / engine / use_delta:
        Evaluation-engine knobs forwarded to the evaluator: memoization
        on/off, process-pool width for batched population evaluation, the
        vector/fast/reference engine selector (``"vector"`` by default) and
        cross-generation delta evaluation on/off.  Every combination
        produces bit-identical results.
    backend:
        Cost-backend selector forwarded to the evaluator (``"analytic"``
        by default; ``"zigzag"`` swaps in the independently coded
        memory-centric model — see :mod:`repro.cost.backend`).
    cache_dir:
        Optional persistent cross-run layer-cache directory forwarded to
        the evaluator (see :class:`~repro.cost.persist.PersistentLayerCache`);
        results are bit-identical with or without it.
    objectives:
        Optional multi-objective axis set for Pareto-front search: an
        :class:`ObjectiveSet`, an iterable of objective names, or a
        comma-separated string (``"latency,energy,area"``).  When given
        (and ``objective`` is left at its default), the set's first
        objective becomes the scalar objective driving fitness, every
        evaluation carries the per-objective vector, and
        :meth:`pareto_search` becomes available.
    """

    def __init__(
        self,
        model: Model,
        platform: Platform,
        objective: Optional[Objective] = None,
        num_levels: int = 2,
        fixed_hardware: Optional[HardwareConfig] = None,
        area_model: Optional[AreaModel] = None,
        energy_model: Optional[EnergyModel] = None,
        bytes_per_element: int = 1,
        buffer_allocation: str = "exact",
        use_cache: bool = True,
        workers: Optional[int] = None,
        engine: str = "vector",
        objectives: Union[ObjectiveSet, Iterable[str], str, None] = None,
        use_delta: bool = True,
        backend: str = "analytic",
        cache_dir: Optional[str] = None,
    ):
        if objectives is not None and not isinstance(objectives, ObjectiveSet):
            objectives = ObjectiveSet.from_names(objectives)
        if objective is None:
            objective = (
                objectives.primary if objectives is not None else Objective.LATENCY
            )
        self.model = model
        self.platform = platform
        self.objective = objective
        self.objectives = objectives
        self.num_levels = num_levels
        self.evaluator = DesignEvaluator(
            model=model,
            platform=platform,
            objective=objective,
            fixed_hardware=fixed_hardware,
            area_model=area_model,
            energy_model=energy_model,
            bytes_per_element=bytes_per_element,
            buffer_allocation=buffer_allocation,
            use_cache=use_cache,
            workers=workers,
            engine=engine,
            objectives=objectives,
            use_delta=use_delta,
            backend=backend,
            cache_dir=cache_dir,
        )
        self.space = self.evaluator.genome_space(num_levels=num_levels)
        #: Live checkpoint sessions of in-flight searches.  The sweep
        #: runner closes these when it discards a timed-out framework so a
        #: search still running on an abandoned watchdog thread can no
        #: longer write checkpoints its retry is resuming from.
        self.checkpoint_sessions: List[CheckpointSession] = []

    def close(self) -> None:
        """Release evaluator resources (worker pool, caches, checkpoints)."""
        for session in self.checkpoint_sessions:
            session.close()
        self.checkpoint_sessions.clear()
        self.evaluator.shutdown()

    def __enter__(self) -> "CoOptimizationFramework":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.close()

    def search(
        self,
        optimizer: SupportsRun,
        sampling_budget: int = 2000,
        seed: int = 0,
        *,
        run_label: Optional[str] = None,
        interrupt_check: Optional[Callable[[], bool]] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        checkpoint_key: Optional[str] = None,
    ) -> SearchResult:
        """Run one optimization algorithm under the given sampling budget.

        With ``checkpoint_dir`` set (and an optimizer that declares
        ``supports_checkpoint``), the search writes a crash-safe checkpoint
        every ``checkpoint_every`` generation boundaries under
        ``checkpoint_key`` (derived from model/platform/objective/label/
        budget/seed when omitted), resumes bit-identically from an existing
        checkpoint, and clears it on successful completion.
        ``interrupt_check`` is polled at generation boundaries; when it
        turns truthy the search checkpoints and raises
        :class:`~repro.framework.search.SearchInterrupted`.
        """
        tracker = SearchTracker(
            evaluator=self.evaluator,
            space=self.space,
            sampling_budget=sampling_budget,
        )
        rng = np.random.default_rng(seed)
        session = self._prepare_search(
            tracker,
            rng,
            optimizer,
            run_label=run_label,
            interrupt_check=interrupt_check,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_key=checkpoint_key,
            sampling_budget=sampling_budget,
            seed=seed,
            pareto=False,
        )
        start = time.perf_counter()
        try:
            optimizer.run(tracker, rng)
        except BudgetExhausted:
            # The optimizer kept asking after the budget ran out; that is the
            # expected way for budget-oblivious algorithms to terminate.
            pass
        finally:
            # SearchInterrupted (and any crash) leaves the checkpoint on
            # disk for the resume; only a *completed* search clears it.
            if session is not None and session in self.checkpoint_sessions:
                self.checkpoint_sessions.remove(session)
        if session is not None:
            session.close()
            session.store.clear()
        elapsed = time.perf_counter() - start
        return SearchResult(
            optimizer_name=optimizer.name,
            best=tracker.best,
            evaluations=tracker.evaluations,
            sampling_budget=sampling_budget,
            wall_time_seconds=elapsed,
            history=tuple(tracker.history),
        )

    def pareto_search(
        self,
        optimizer: SupportsRun,
        sampling_budget: int = 2000,
        seed: int = 0,
        archive_capacity: int = DEFAULT_ARCHIVE_CAPACITY,
        *,
        run_label: Optional[str] = None,
        interrupt_check: Optional[Callable[[], bool]] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        checkpoint_key: Optional[str] = None,
    ) -> ParetoResult:
        """Run one algorithm and return the Pareto front of its evaluations.

        Requires the framework to be built with ``objectives``.  The
        tracker feeds every valid evaluation into a bounded
        :class:`ParetoArchive`, so the returned front reflects everything
        the search priced — any optimizer yields *a* front, though a
        multi-objective algorithm (``"nsga2"``) spreads the budget across
        it instead of converging to the primary objective's optimum.
        """
        if self.objectives is None:
            raise ValueError(
                "pareto_search requires the framework to be constructed "
                "with an ObjectiveSet (objectives=...)"
            )
        tracker = SearchTracker(
            evaluator=self.evaluator,
            space=self.space,
            sampling_budget=sampling_budget,
            archive=ParetoArchive(archive_capacity),
        )
        rng = np.random.default_rng(seed)
        session = self._prepare_search(
            tracker,
            rng,
            optimizer,
            run_label=run_label,
            interrupt_check=interrupt_check,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_key=checkpoint_key,
            sampling_budget=sampling_budget,
            seed=seed,
            pareto=True,
        )
        start = time.perf_counter()
        try:
            optimizer.run(tracker, rng)
        except BudgetExhausted:
            pass
        finally:
            if session is not None and session in self.checkpoint_sessions:
                self.checkpoint_sessions.remove(session)
        if session is not None:
            session.close()
            session.store.clear()
        elapsed = time.perf_counter() - start
        return ParetoResult(
            optimizer_name=optimizer.name,
            objectives=self.objectives.objectives,
            front=tuple(tracker.archive.front()),
            evaluations=tracker.evaluations,
            sampling_budget=sampling_budget,
            wall_time_seconds=elapsed,
            batch_calls=tracker.batch_calls,
            batched_evaluations=tracker.batched_evaluations,
        )

    # -- checkpoint plumbing -------------------------------------------------

    def _prepare_search(
        self,
        tracker: SearchTracker,
        rng: np.random.Generator,
        optimizer: SupportsRun,
        *,
        run_label: Optional[str],
        interrupt_check: Optional[Callable[[], bool]],
        checkpoint_dir: Optional[str],
        checkpoint_every: int,
        checkpoint_key: Optional[str],
        sampling_budget: int,
        seed: int,
        pareto: bool,
    ) -> Optional[CheckpointSession]:
        """Wire labels/interrupts into the tracker; attach a checkpoint session.

        Returns the session, or None when checkpointing is off or the
        optimizer does not participate in the checkpoint protocol (those
        run fresh on every attempt and observe interrupts only if their
        loop happens to announce generation boundaries).
        """
        label = (
            run_label
            if run_label is not None
            else getattr(optimizer, "name", "search")
        )
        tracker.run_label = label
        tracker.interrupt_check = interrupt_check
        if checkpoint_dir is None or not getattr(
            optimizer, "supports_checkpoint", False
        ):
            return None
        key = checkpoint_key
        if key is None:
            parts = [
                self.model.name,
                self.platform.name,
                self.objective.value,
                label,
                f"b{sampling_budget}",
                f"s{seed}",
            ]
            if pareto:
                axes = ",".join(
                    objective.value for objective in self.objectives.objectives
                )
                parts.insert(3, f"pareto={axes}")
            key = "/".join(parts)
        store = CheckpointStore(checkpoint_dir, key)
        loaded = store.load()
        if loaded is not None:
            restore_search_state(tracker, rng, loaded)
        session = CheckpointSession(store, rng, checkpoint_every)
        tracker.checkpoint_session = session
        self.checkpoint_sessions.append(session)
        return session
