"""Fitness evaluation: decode, evaluate, check constraints, score.

This is the paper's Evaluation Block (Fig. 3(a)): an encoded individual is
decoded into an accelerator design point, scored by the HW performance
evaluator, and its fitness is replaced with a (graded) negative penalty when
the design violates the budget, so that optimization algorithms of any kind
can be plugged into the Optimization Block unchanged.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.area import AreaBreakdown, AreaModel
from repro.arch.energy import EnergyModel
from repro.arch.hardware import HardwareConfig
from repro.arch.platform import Platform
from repro.cost.backend import BACKENDS, create_backend
from repro.cost.cache import CacheStats, LRUCache
from repro.cost.maestro import DEFAULT_LAYER_CACHE_SIZE
from repro.cost.performance import ModelPerformance
from repro.encoding.genome import Genome, GenomeSpace
from repro.encoding.genome_matrix import LEVEL_WIDTH, GenomeMatrix, row_to_genome
from repro.framework.constraints import ConstraintChecker
from repro.framework.designpoint import (
    AcceleratorDesign,
    LazyMappingDesign,
    LazyRowMappingDesign,
)
from repro.framework.objective import Objective, ObjectiveSet, objective_value
from repro.mapping.mapping import Mapping
from repro.workloads.layer import Layer
from repro.workloads.model import Model

#: Scale of the penalty assigned to invalid design points.  It dominates any
#: achievable objective value so that every valid point outranks every
#: invalid one, while the severity grading still gives the search a slope
#: back towards the feasible region.
INVALID_FITNESS_SCALE = 1e18

#: Bound of the whole-design memo (one entry per distinct raw mapping).
DEFAULT_DESIGN_CACHE_SIZE = 2048

#: Accepted evaluation-engine selectors, fastest first.  The single source
#: of truth: job specs, experiment settings and the CLIs import this.
ENGINES = ("vector", "fast", "reference")

#: How many times a broken worker pool is respawned over an evaluator's
#: lifetime before it degrades (stickily) to in-process evaluation.  A pool
#: that keeps dying is usually being OOM-killed, and respawning it forever
#: just thrashes the machine.
DEFAULT_MAX_POOL_RESTARTS = 2

#: Clock default the inlined matrix scoring pins hardware to — taken from
#: the dataclass itself so a changed HardwareConfig default cannot silently
#: diverge the matrix path from :meth:`DesignEvaluator._score_performance`.
_DEFAULT_FREQUENCY_MHZ = HardwareConfig.__dataclass_fields__[
    "frequency_mhz"
].default

#: Evaluator installed in each worker process (see ``_init_worker``).
_WORKER_EVALUATOR: Optional["DesignEvaluator"] = None


def _init_worker(evaluator: "DesignEvaluator") -> None:
    """Install the pickled evaluator once per worker process."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(genome: Genome) -> "EvaluationResult":
    """Evaluate one genome in a worker process (pool map target)."""
    return _WORKER_EVALUATOR.evaluate_genome(genome)


def _fire_worker_faults() -> None:
    """Chaos hook: let an installed fault plan kill this worker process.

    The plan travels into the worker pickled inside the evaluator (see
    ``_init_worker``); outside fault-injection runs ``fault_plan`` is None
    and this is a no-op attribute check.
    """
    plan = getattr(_WORKER_EVALUATOR, "fault_plan", None)
    if plan is not None:
        plan.on_worker_chunk()


def _evaluate_batch_in_worker(genomes: List[Genome]) -> List["EvaluationResult"]:
    """Evaluate a population chunk in a worker process (pool map target).

    Chunks go through the worker evaluator's own in-process population
    path, so the vector engine runs inside each worker.
    """
    _fire_worker_faults()
    return _WORKER_EVALUATOR.evaluate_population(genomes, workers=1)


def _evaluate_matrix_in_worker(matrix: GenomeMatrix) -> List["EvaluationResult"]:
    """Evaluate a gene-matrix chunk in a worker process (pool map target)."""
    _fire_worker_faults()
    return _WORKER_EVALUATOR.evaluate_matrix(matrix, workers=1)


def _with_genome(result: "EvaluationResult", genome: Genome) -> "EvaluationResult":
    """A copy of ``result`` carrying ``genome``, without the __init__ cost.

    Equivalent to ``dataclasses.replace(result, genome=genome)``; the frozen
    dataclass stores fields in the instance dict, so a bulk dict copy
    suffices and runs several times faster on this per-evaluation path.
    """
    wrapped = object.__new__(EvaluationResult)
    wrapped.__dict__.update(result.__dict__)
    wrapped.__dict__["genome"] = genome
    return wrapped


@dataclass(frozen=True)
class EvaluationResult:
    """Everything the framework knows about one evaluated design point."""

    fitness: float
    valid: bool
    objective: Objective
    objective_value: float
    design: AcceleratorDesign
    violations: tuple
    genome: Optional[Genome] = None
    #: Per-objective values (lower is better each) when the evaluator was
    #: configured with an :class:`~repro.framework.objective.ObjectiveSet`.
    #: Computed from the same cost-model pass as the scalar objective, so
    #: requesting a vector never costs a second evaluation.
    objective_vector: Optional[Tuple[float, ...]] = None

    @property
    def latency(self) -> float:
        """Total model latency of the design point (cycles)."""
        return self.design.latency

    @property
    def energy(self) -> float:
        """Total model energy of the design point."""
        return self.design.energy

    @property
    def latency_area_product(self) -> float:
        """Latency times area of the design point."""
        return self.design.latency_area_product


class RowGenomeResult(EvaluationResult):
    """A result whose genome materializes from its gene-row fingerprint.

    The gene-matrix path scores whole populations without ever building
    :class:`~repro.encoding.genome.Genome` objects; the few results whose
    ``genome`` is actually read (serialization, analysis) rebuild it from
    the stored row bytes on first access.  The property is a data
    descriptor, so it takes precedence over the inherited dataclass field
    in the instance dict.
    """

    @property
    def genome(self) -> Genome:
        cached = self.__dict__.get("_genome_object")
        if cached is None:
            from repro.encoding.genome_matrix import LEVEL_WIDTH

            row = np.frombuffer(self.__dict__["_genome_row"], dtype=np.int64)
            cached = row_to_genome(row, len(row) // LEVEL_WIDTH)
            self.__dict__["_genome_object"] = cached
        return cached


def _with_row_genome(
    result: EvaluationResult, fingerprint: bytes
) -> EvaluationResult:
    """A copy of ``result`` whose genome rebuilds lazily from its gene row."""
    wrapped = object.__new__(RowGenomeResult)
    wrapped.__dict__.update(result.__dict__)
    wrapped.__dict__["_genome_row"] = fingerprint
    return wrapped


class DesignEvaluator:
    """Decodes and scores design points for one model on one platform.

    Parameters
    ----------
    model:
        Target DNN model.
    platform:
        Area budget and bandwidth assumptions (edge / cloud).
    objective:
        The metric to minimize.
    fixed_hardware:
        When given, the Fixed-HW use case is enabled: the PE array and
        buffer capacities are pinned and only the mapping is evaluated
        (mappings that do not fit the buffers are invalid).
    area_model / energy_model / bytes_per_element:
        Technology models; defaults are the calibrated models described in
        DESIGN.md.
    buffer_allocation:
        ``"exact"`` (default, the paper's strategy) allocates exactly the
        buffer capacity the decoded mapping needs; ``"fill"`` instead gives
        the L2 all of the area budget left over after PEs and L1s, which is
        the naive alternative used by the buffer-allocation ablation.
    use_cache:
        When True (default) memoize whole-design and per-layer evaluations
        behind bounded LRU caches.  Results are bit-identical either way;
        the flag exists for benchmarking and debugging (``--no-cache``).
    workers:
        Default process-pool width for :meth:`evaluate_population`.
        ``None``/``1`` evaluates sequentially in-process.
    engine:
        Evaluation-engine selector.  ``"vector"`` (default) batches whole
        populations through the NumPy structure-of-arrays engine
        (:mod:`repro.cost.vector_engine`) and falls back to the scalar fast
        engine for single evaluations; ``"fast"`` is the scalar tuple-based
        engine; ``"reference"`` is the seed implementation kept for parity
        tests and baseline benchmarks.  All three are bit-identical.
    objectives:
        Optional :class:`~repro.framework.objective.ObjectiveSet`.  When
        given, every :class:`EvaluationResult` additionally carries the
        per-objective value vector, computed from the same cost-model pass
        as the scalar objective (the scalar path is unchanged either way).
    use_delta:
        Cross-generation delta evaluation on the gene-matrix path
        (:meth:`evaluate_matrix`): members and (member, layer) rows whose
        fingerprints are unchanged since the previous generation reuse
        their priced results without touching the engine.  Results are
        bit-identical either way (reused values are pure functions of the
        fingerprint); the flag exists for benchmarking and the parity
        tests.  Reuse counters surface in ``cost_model.vector_stats``.
    backend:
        Cost-backend selector (:mod:`repro.cost.backend`).  ``"analytic"``
        (default) is the MAESTRO-style order-aware engine this repo
        reproduces; ``"zigzag"`` is the independently coded memory-centric
        model used as a cross-backend correctness oracle
        (``repro crosscheck``).  Non-analytic backends price designs
        through the per-genome path: the vector/matrix fast paths and the
        ``engine`` selector are analytic-backend concepts.
    cache_dir:
        Optional directory of a persistent cross-run layer cache
        (:class:`~repro.cost.persist.PersistentLayerCache`).  The
        in-memory layer LRU becomes an L1 over this shared on-disk L2:
        misses probe the store before the engine and freshly priced rows
        are written back, so identical queries across worker processes,
        sweep jobs and successive runs become lookups.  Results are
        bit-identical with or without it (served rows are pure functions
        of their content-addressed keys); ignored when ``use_cache`` is
        False or on the reference engine.
    """

    #: Accepted ``engine`` values (the module-level constant).
    ENGINES = ENGINES

    #: Accepted ``backend`` values (from :mod:`repro.cost.backend`).
    BACKENDS = BACKENDS

    def __init__(
        self,
        model: Model,
        platform: Platform,
        objective: Objective = Objective.LATENCY,
        fixed_hardware: Optional[HardwareConfig] = None,
        area_model: Optional[AreaModel] = None,
        energy_model: Optional[EnergyModel] = None,
        bytes_per_element: int = 1,
        buffer_allocation: str = "exact",
        use_cache: bool = True,
        workers: Optional[int] = None,
        engine: str = "vector",
        objectives: Optional[ObjectiveSet] = None,
        use_delta: bool = True,
        backend: str = "analytic",
        cache_dir: Optional[str] = None,
    ):
        if buffer_allocation not in ("exact", "fill"):
            raise ValueError(
                f"buffer_allocation must be 'exact' or 'fill', got {buffer_allocation!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 when given, got {workers}")
        if engine not in self.ENGINES:
            raise ValueError(
                f"engine must be one of {self.ENGINES}, got {engine!r}"
            )
        if backend not in self.BACKENDS:
            raise ValueError(
                f"backend must be one of {self.BACKENDS}, got {backend!r}"
            )
        self.engine = engine
        self.backend = backend
        self.model = model
        self.platform = platform
        self.objective = objective
        self.objectives = objectives
        self.fixed_hardware = fixed_hardware
        self.buffer_allocation = buffer_allocation
        self.area_model = area_model if area_model is not None else AreaModel()
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.bytes_per_element = bytes_per_element
        self.use_cache = use_cache
        self.workers = workers
        self.cost_model = create_backend(
            backend,
            energy_model=self.energy_model,
            bytes_per_element=bytes_per_element,
            cache_size=DEFAULT_LAYER_CACHE_SIZE if use_cache else 0,
            engine="reference" if engine == "reference" else "fast",
        )
        self.cache_dir = cache_dir
        if cache_dir is not None and use_cache and engine != "reference":
            from repro.cost.persist import PersistentLayerCache

            self.cost_model.attach_persistent_cache(
                PersistentLayerCache(cache_dir)
            )
        self.constraint_checker = ConstraintChecker(
            area_budget_um2=platform.area_budget_um2,
            fixed_hardware=fixed_hardware,
        )
        self._design_cache = LRUCache(
            DEFAULT_DESIGN_CACHE_SIZE if use_cache and engine != "reference" else 0
        )
        self.use_delta = use_delta
        #: Previous generation's member fingerprint table (gene-matrix path).
        self._delta_members: Optional[dict] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        #: Optional :class:`~repro.experiments.faults.FaultPlan`; ships to
        #: pool workers inside the pickled evaluator so chaos tests can
        #: kill workers deterministically.  ``None`` in production.
        self.fault_plan = None
        #: Lifetime cap on worker-pool respawns after ``BrokenProcessPool``.
        self.max_pool_restarts = DEFAULT_MAX_POOL_RESTARTS
        self._pool_restarts = 0
        #: Sticky: once the restart budget is spent, every later population
        #: call evaluates in-process instead of thrashing a dying pool.
        self._pool_degraded = False
        #: Observability counters for the pool-recovery path.
        self.pool_stats = {
            "broken": 0,
            "restarts": 0,
            "redispatched_chunks": 0,
            "degraded": False,
        }

    # -- public API --------------------------------------------------------

    def genome_space(self, num_levels: int = 2) -> GenomeSpace:
        """Build the genome space matching this evaluator's configuration."""
        fixed_pe_array = (
            self.fixed_hardware.pe_array if self.fixed_hardware is not None else None
        )
        max_pes = self.area_model.max_pes_within(self.platform.area_budget_um2)
        if fixed_pe_array is not None and len(fixed_pe_array) != num_levels:
            raise ValueError(
                f"fixed hardware has {len(fixed_pe_array)} levels, requested {num_levels}"
            )
        return GenomeSpace.from_model(
            self.model,
            max_pes=max_pes,
            num_levels=num_levels,
            fixed_pe_array=fixed_pe_array,
        )

    def evaluate_genome(self, genome: Genome) -> EvaluationResult:
        """Decode and score an encoded individual.

        Whole evaluations are memoized on the mapping's canonical key:
        identical raw mappings (elites copied between generations, converged
        populations) skip decoding and scoring entirely.
        """
        key = genome.cache_key()
        result = self._design_cache.get(key)
        if result is None:
            result = self.evaluate_mapping(genome.to_mapping())
            self._design_cache.put(key, result)
        return _with_genome(result, genome)

    def evaluate_population(
        self,
        genomes: Sequence[Genome],
        workers: Optional[int] = None,
    ) -> List[EvaluationResult]:
        """Score a whole population in one call, preserving input order.

        With ``engine="vector"`` (the default) the population is the
        vectorization axis: design-cache misses are deduplicated and their
        per-layer costs evaluated in one NumPy pass.  ``workers`` (default:
        the evaluator's ``workers`` setting) selects an optional process
        pool, which ships contiguous population chunks so each worker runs
        the vector engine on its slice.  Results are bit-identical to
        evaluating the same genomes one by one, because every evaluation is
        a pure function of its genome.
        """
        genomes = list(genomes)
        width = self.workers if workers is None else workers
        if (
            width is not None
            and width > 1
            and len(genomes) > 1
            and not self._pool_degraded
        ):
            chunk = -(-len(genomes) // width)
            chunks = [
                genomes[start : start + chunk]
                for start in range(0, len(genomes), chunk)
            ]
            batches = self._map_chunks(
                _evaluate_batch_in_worker,
                chunks,
                width,
                lambda piece: self.evaluate_population(piece, workers=1),
            )
            return [result for batch in batches for result in batch]
        if (
            self.engine == "vector"
            and self.backend == "analytic"
            and len(genomes) > 1
        ):
            return self._evaluate_population_vector(genomes)
        return [self.evaluate_genome(genome) for genome in genomes]

    def _evaluate_population_vector(
        self, genomes: List[Genome]
    ) -> List[EvaluationResult]:
        """The in-process population path of the vector engine.

        Mirrors ``[self.evaluate_genome(g) for g in genomes]`` including the
        design-cache counters: duplicates of an uncached genome count as
        hits, exactly as they would once the sequential loop had cached the
        first occurrence.
        """
        cache = self._design_cache
        count = len(genomes)
        results: List[Optional[EvaluationResult]] = [None] * count
        slots: List[Optional[int]] = [None] * count
        pending: dict = {}
        miss_genomes: List[Genome] = []
        miss_keys: List[tuple] = []
        for position, genome in enumerate(genomes):
            key = genome.cache_key()
            slot = pending.get(key)
            if slot is not None:
                if cache.maxsize > 0:
                    cache.hits += 1
                slots[position] = slot
                continue
            result = cache.get(key)
            if result is not None:
                results[position] = _with_genome(result, genome)
                continue
            pending[key] = len(miss_genomes)
            slots[position] = len(miss_genomes)
            miss_genomes.append(genome)
            miss_keys.append(key)

        if miss_genomes:
            # Loop orders are validated here (to_mapping would reject them
            # on the scalar path); everything else in the cache key is
            # already in clamped index form, so the cost model consumes the
            # keys directly and mappings materialize lazily on the results.
            for key in miss_keys:
                for (_, _, order), _ in key:
                    if len(order) != 6 or len(set(order)) != 6:
                        raise ValueError(
                            f"order must be a permutation of all dims, got {order}"
                        )
            performances = self.cost_model.evaluate_model_batch(
                self.model,
                miss_keys,
                noc_bandwidth=self.platform.noc_bandwidth,
                dram_bandwidth=self.platform.dram_bandwidth,
            )
            miss_results: List[EvaluationResult] = []
            for key, performance in zip(miss_keys, performances):
                result = self._score_performance(
                    performance,
                    pe_array=tuple(part[0][0] for part in key),
                    mapping_key=key,
                )
                cache.put(key, result)
                miss_results.append(result)
            for position, slot in enumerate(slots):
                if slot is not None:
                    results[position] = _with_genome(
                        miss_results[slot], genomes[position]
                    )
        return results

    # -- gene-matrix population path ---------------------------------------

    def evaluate_matrix(
        self,
        matrix: GenomeMatrix,
        workers: Optional[int] = None,
    ) -> List[EvaluationResult]:
        """Score a whole *repaired* gene-matrix population in one call.

        This is the population data path the matrix-native search loops
        feed: rows must already be repaired (the tracker's
        :meth:`~repro.framework.search.SearchTracker.evaluate_matrix` does
        this with one vectorized pass).  Results are bit-identical to
        ``[self.evaluate_genome(g) for g in matrix.to_genomes()]`` — the
        row bytes *are* the flattened design cache key — but no per-member
        ``Genome`` or ``Mapping`` object is ever constructed: design-level
        reuse works on raw row fingerprints, misses feed the cost model's
        packed matrix entry directly, and genomes on the returned results
        materialize lazily.

        With ``use_delta`` (the default) members whose fingerprints are
        unchanged since the previous ``evaluate_matrix`` call reuse their
        priced results without probing the design cache or touching the
        engine — elitist survivors and converged populations cost ~zero.
        A delta hit still counts as a design-cache hit (sequential
        evaluation would have hit the memo), so cache hit rates mean the
        same thing with delta evaluation on or off; the ``delta_*``
        counters in ``cost_model.vector_stats`` report the subset of hits
        the fingerprint tables absorbed.
        """
        count = len(matrix)
        if count == 0:
            return []
        width = self.workers if workers is None else workers
        if (
            width is not None
            and width > 1
            and count > 1
            and not self._pool_degraded
        ):
            chunk = -(-count // width)
            chunks = [
                GenomeMatrix(matrix.data[start : start + chunk], matrix.num_levels)
                for start in range(0, count, chunk)
            ]
            batches = self._map_chunks(
                _evaluate_matrix_in_worker,
                chunks,
                width,
                lambda piece: self.evaluate_matrix(piece, workers=1),
            )
            return [result for batch in batches for result in batch]
        if self.engine != "vector" or self.backend != "analytic":
            # The scalar engines (and non-analytic backends) take the
            # genome path; under the analytic backend values are
            # bit-identical, so matrix-native search loops stay exact under
            # every engine selector.  Hierarchy depth is no gate: the
            # vector path prices 1-, 2- and 3+-level matrices natively.
            genomes = matrix.to_genomes()
            return self.evaluate_population(genomes, workers=1)
        return self._evaluate_matrix_vector(matrix)

    def _evaluate_matrix_vector(
        self, matrix: GenomeMatrix
    ) -> List[EvaluationResult]:
        """In-process vector-engine path of :meth:`evaluate_matrix`."""
        data = matrix.data
        count = len(data)
        orders = data.reshape(count, matrix.num_levels, 14)[:, :, 2:8]
        invalid = (np.sort(orders, axis=2) != np.arange(6, dtype=np.int64)).any(
            axis=(1, 2)
        )
        if invalid.any():
            level = orders[np.flatnonzero(invalid)[0]]
            raise ValueError(
                f"order must be a permutation of all dims, got {level.tolist()}"
            )
        raw = data.tobytes()
        step = data.shape[1] * 8
        fingerprints = [raw[i * step : i * step + step] for i in range(count)]
        cache = self._design_cache
        use_delta = self.use_delta
        previous = self._delta_members if use_delta else None
        table: Optional[dict] = {} if use_delta else None
        members_reused = 0
        results: List[Optional[EvaluationResult]] = [None] * count
        slots: List[Optional[int]] = [None] * count
        pending: dict = {}
        miss_rows: List[int] = []
        for position, fingerprint in enumerate(fingerprints):
            if previous is not None:
                known = previous.get(fingerprint)
                if known is not None:
                    members_reused += 1
                    # The member was priced one generation ago, so plain
                    # sequential evaluation would have hit the design cache
                    # here — count it as such; the delta counters report
                    # the subset of hits the table absorbed.
                    if cache.maxsize > 0:
                        cache.hits += 1
                    results[position] = known
                    table[fingerprint] = known
                    continue
            slot = pending.get(fingerprint)
            if slot is not None:
                if cache.maxsize > 0:
                    cache.hits += 1
                slots[position] = slot
                continue
            known = cache.get(fingerprint)
            if known is not None:
                results[position] = known
                if table is not None:
                    table[fingerprint] = known
                continue
            pending[fingerprint] = len(miss_rows)
            slots[position] = len(miss_rows)
            miss_rows.append(position)

        miss_results: List[EvaluationResult] = []
        if miss_rows:
            miss_matrix = data[np.array(miss_rows, dtype=np.int64)]
            performances = self.cost_model.evaluate_model_matrix(
                self.model,
                miss_matrix,
                noc_bandwidth=self.platform.noc_bandwidth,
                dram_bandwidth=self.platform.dram_bandwidth,
                use_delta=use_delta,
            )
            if self.fixed_hardware is None and self.buffer_allocation == "exact":
                miss_results = self._score_matrix_misses(
                    miss_matrix, miss_rows, fingerprints, performances
                )
            else:
                for position, performance in zip(miss_rows, performances):
                    miss_results.append(
                        self._score_performance(
                            performance,
                            pe_array=tuple(
                                int(data[position, level * LEVEL_WIDTH])
                                for level in range(matrix.num_levels)
                            ),
                            mapping_fingerprint=fingerprints[position],
                        )
                    )
            for result, position in zip(miss_results, miss_rows):
                cache.put(fingerprints[position], result)
                if table is not None:
                    table[fingerprints[position]] = result
            for position, slot in enumerate(slots):
                if slot is not None and results[position] is None:
                    results[position] = miss_results[slot]
        if use_delta:
            self._delta_members = table
            # delta_generations is owned by the cost model (one increment
            # per delta-filtered evaluate_model_matrix call), so direct
            # CostModel API users get a coherent stats dict too.
            counters = self.cost_model.delta_counters
            counters["delta_members_reused"] += members_reused
            counters["delta_member_requests"] += count
        return [
            _with_row_genome(results[position], fingerprints[position])
            for position in range(count)
        ]

    def _score_matrix_misses(
        self,
        miss_matrix: np.ndarray,
        miss_rows: List[int],
        fingerprints: List[bytes],
        performances: List[ModelPerformance],
    ) -> List[EvaluationResult]:
        """Score freshly priced gene rows with the scoring math inlined.

        Bit-identical to calling :meth:`_score_performance` per design
        (every arithmetic operation is performed in the same order on the
        same scalars); the per-design dataclass machinery is replaced by
        bulk ``__dict__`` construction, which matters when a generation
        scores hundreds of designs.  Only the derived-hardware / exact-
        buffer configuration takes this path.
        """
        area_model = self.area_model
        pe_area_um2 = area_model.pe_area_um2
        l1_per_byte = area_model.l1_area_per_byte_um2
        l2_per_byte = area_model.l2_area_per_byte_um2
        budget = self.platform.area_budget_um2
        noc_bandwidth = self.platform.noc_bandwidth
        dram_bandwidth = self.platform.dram_bandwidth
        bytes_per_element = self.bytes_per_element
        objective = self.objective
        objectives = self.objectives
        num_levels = miss_matrix.shape[1] // LEVEL_WIDTH
        spatial_columns = [
            miss_matrix[:, level * LEVEL_WIDTH].tolist()
            for level in range(num_levels)
        ]
        results: List[EvaluationResult] = []
        for index, performance in enumerate(performances):
            l1_size = performance.l1_requirement_bytes
            if l1_size < 1:
                l1_size = 1
            l2_size = performance.l2_requirement_bytes
            if l2_size < 1:
                l2_size = 1
            pe_array = tuple(column[index] for column in spatial_columns)
            num_pes = 1
            for extent in pe_array:
                num_pes *= extent
            hardware = object.__new__(HardwareConfig)
            hardware.__dict__.update(
                pe_array=pe_array,
                l1_size=l1_size,
                l2_size=l2_size,
                noc_bandwidth=noc_bandwidth,
                dram_bandwidth=dram_bandwidth,
                bytes_per_element=bytes_per_element,
                frequency_mhz=_DEFAULT_FREQUENCY_MHZ,
            )
            pe_area = num_pes * pe_area_um2
            l1_area = num_pes * l1_size * l1_per_byte
            l2_area = l2_size * l2_per_byte
            area = object.__new__(AreaBreakdown)
            area.__dict__.update(
                pe_area=pe_area, l1_area=l1_area, l2_area=l2_area
            )
            total = pe_area + (l1_area + l2_area)
            if objective is Objective.LATENCY:
                value = performance.latency
            elif objective is Objective.LATENCY_AREA_PRODUCT:
                value = performance.latency * total
            else:
                value = objective_value(objective, performance, area)
            if total / budget > 1.0:
                check = self.constraint_checker.check(hardware, area)
                fitness = self._fitness(value, False, check.severity)
                valid = False
                violations = check.violations
            else:
                fitness = -value
                valid = True
                violations = ()
            design = LazyRowMappingDesign.build(
                hardware, fingerprints[miss_rows[index]], performance, area
            )
            result = object.__new__(EvaluationResult)
            result.__dict__.update(
                fitness=fitness,
                valid=valid,
                objective=objective,
                objective_value=value,
                design=design,
                violations=violations,
                genome=None,
                objective_vector=(
                    objectives.values(performance, area)
                    if objectives is not None
                    else None
                ),
            )
            results.append(result)
        return results

    @property
    def cache_stats(self) -> CacheStats:
        """Combined hit/miss counters of the design and layer caches."""
        return self._design_cache.stats().combined(self.cost_model.cache_stats)

    @property
    def design_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the whole-design memo."""
        return self._design_cache.stats()

    @property
    def layer_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-layer report cache."""
        return self.cost_model.cache_stats

    @property
    def persistent_cache(self):
        """The attached persistent L2 tier, or ``None``."""
        return self.cost_model.layer_cache.tier

    def cache_clear(self) -> None:
        """Drop all memoized evaluations, delta tables and counters."""
        self._design_cache.clear()
        self._delta_members = None
        self.cost_model.cache_clear()

    def _map_chunks(
        self,
        worker_fn: Callable,
        chunks: List,
        width: int,
        local_fn: Callable,
    ) -> List[List[EvaluationResult]]:
        """Map deterministic chunks over the pool, surviving dead workers.

        ``pool.map`` yields chunk results in input order, so when a worker
        dies (OOM-killer, segfault, injected ``kill-worker`` fault) and the
        iteration raises :class:`BrokenProcessPool`, every chunk already
        yielded is kept and exactly the undelivered chunks are re-dispatched
        — against a respawned pool while the lifetime restart budget
        (:attr:`max_pool_restarts`) lasts, and in-process through
        ``local_fn`` once it is spent (:attr:`_pool_degraded` then stays
        set, so later population calls skip the pool entirely).  The chunk
        boundaries never change across re-dispatches and every evaluation
        is a pure function of its genome, so results are bit-identical to
        an undisturbed pool run.
        """
        outputs: List[Optional[List[EvaluationResult]]] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        while pending:
            if self._pool_degraded:
                for index in pending:
                    outputs[index] = local_fn(chunks[index])
                break
            pool = self._ensure_pool(width)
            try:
                cursor = 0
                for batch in pool.map(
                    worker_fn, [chunks[index] for index in pending]
                ):
                    outputs[pending[cursor]] = batch
                    cursor += 1
                pending = []
            except BrokenProcessPool:
                self.pool_stats["broken"] += 1
                self._teardown_pool()
                pending = [index for index in pending if outputs[index] is None]
                self.pool_stats["redispatched_chunks"] += len(pending)
                if self._pool_restarts >= self.max_pool_restarts:
                    self._pool_degraded = True
                    self.pool_stats["degraded"] = True
                else:
                    self._pool_restarts += 1
                    self.pool_stats["restarts"] += 1
        return outputs

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the worker pool (if one was started).

        ``wait=False`` abandons in-flight work instead of joining it — the
        right call when discarding an evaluator whose pool may be broken or
        whose search may still be running on a watchdog thread.

        A persistent cache tier is flushed and its index persisted; the
        close is not terminal (the next lookup reopens the store), so
        shutting one evaluator down never strands a tier shared with
        other jobs through ``adopt_cache``.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None
            self._pool_workers = 0
        tier = self.cost_model.layer_cache.tier
        if tier is not None:
            tier.close()

    def close(self) -> None:
        """Alias of :meth:`shutdown` (context-manager symmetry)."""
        self.shutdown()

    def __enter__(self) -> "DesignEvaluator":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.shutdown()

    def _teardown_pool(self) -> None:
        """Drop a (possibly broken) pool without joining its workers."""
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False)
            except Exception:
                pass
            self._pool = None
            self._pool_workers = 0

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """Start (or resize) the lazily created evaluation worker pool."""
        if self._pool is None or self._pool_workers != workers:
            self.shutdown()
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self,),
            )
            self._pool_workers = workers
        return self._pool

    def __getstate__(self) -> dict:
        # Worker pools never cross process boundaries; caches and delta
        # tables restart empty in the worker (see LRUCache.__getstate__).
        state = dict(self.__dict__)
        state["_pool"] = None
        state["_pool_workers"] = 0
        state["_delta_members"] = None
        return state

    def evaluate_mapping(
        self,
        mapping: Mapping | Callable[[Layer], Mapping],
        pe_array: Optional[tuple] = None,
    ) -> EvaluationResult:
        """Score a mapping (or per-layer mapping provider) directly.

        Used by the Fixed-Mapping use case and the HW-opt grid-search
        baseline, where mappings come from dataflow templates rather than
        from the genome encoding.  ``pe_array`` must be given when
        ``mapping`` is a callable (the spatial sizes cannot be read off it).
        """
        if isinstance(mapping, Mapping):
            representative_mapping = mapping
        else:
            if pe_array is None:
                raise ValueError("pe_array is required for per-layer mapping providers")
            representative_mapping = None

        performance = self.cost_model.evaluate_model(
            self.model,
            mapping,
            noc_bandwidth=self.platform.noc_bandwidth,
            dram_bandwidth=self.platform.dram_bandwidth,
        )
        return self._score_performance(
            performance,
            pe_array=pe_array
            if pe_array is not None
            else representative_mapping.pe_array,
            design_mapping=representative_mapping
            if representative_mapping is not None
            else mapping(self.model.unique_layers()[0]),
        )

    # -- internals ---------------------------------------------------------

    def _score_performance(
        self,
        performance: ModelPerformance,
        pe_array: tuple,
        design_mapping: Optional[Mapping] = None,
        mapping_key: Optional[tuple] = None,
        mapping_fingerprint: Optional[bytes] = None,
    ) -> EvaluationResult:
        """Turn a cost-model report into a scored design point.

        The design's mapping comes eagerly (``design_mapping``), as a cache
        key (``mapping_key``), or as a gene-row fingerprint
        (``mapping_fingerprint``); the last two rebuild the mapping lazily
        on first access (the batch paths, where almost no mapping is ever
        inspected).
        """
        hardware = self._derive_hardware(performance, pe_array=pe_array)
        area = self.area_model.breakdown(hardware)
        check = self.constraint_checker.check(
            hardware,
            area,
            l1_requirement_bytes=performance.l1_requirement_bytes,
            l2_requirement_bytes=performance.l2_requirement_bytes,
        )
        value = objective_value(self.objective, performance, area)
        fitness = self._fitness(value, check.valid, check.severity)
        vector = (
            self.objectives.values(performance, area)
            if self.objectives is not None
            else None
        )
        if design_mapping is not None:
            design = AcceleratorDesign(
                hardware=hardware,
                mapping=design_mapping,
                performance=performance,
                area=area,
            )
        elif mapping_fingerprint is not None:
            design = LazyRowMappingDesign.build(
                hardware, mapping_fingerprint, performance, area
            )
        else:
            design = LazyMappingDesign.build(
                hardware, mapping_key, performance, area
            )
        return EvaluationResult(
            fitness=fitness,
            valid=check.valid,
            objective=self.objective,
            objective_value=value,
            design=design,
            violations=check.violations,
            genome=None,
            objective_vector=vector,
        )

    def _derive_hardware(
        self,
        performance: ModelPerformance,
        pe_array: tuple,
    ) -> HardwareConfig:
        """Apply the buffer-allocation strategy (or return the fixed HW)."""
        if self.fixed_hardware is not None:
            return self.fixed_hardware
        l1_size = max(1, performance.l1_requirement_bytes)
        l2_size = max(1, performance.l2_requirement_bytes)
        if self.buffer_allocation == "fill":
            num_pes = 1
            for size in pe_array:
                num_pes *= int(size)
            committed = (
                num_pes * self.area_model.pe_area_um2
                + num_pes * l1_size * self.area_model.l1_area_per_byte_um2
            )
            leftover = self.platform.area_budget_um2 - committed
            if leftover > 0:
                l2_size = max(
                    l2_size, int(leftover // self.area_model.l2_area_per_byte_um2)
                )
        return HardwareConfig(
            pe_array=tuple(pe_array),
            l1_size=l1_size,
            l2_size=l2_size,
            noc_bandwidth=self.platform.noc_bandwidth,
            dram_bandwidth=self.platform.dram_bandwidth,
            bytes_per_element=self.bytes_per_element,
        )

    @staticmethod
    def _fitness(value: float, valid: bool, severity: float) -> float:
        """Higher-is-better fitness with graded penalties for invalid points."""
        if valid:
            return -value
        return -INVALID_FITNESS_SCALE * max(1.0, severity)
