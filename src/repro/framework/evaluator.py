"""Fitness evaluation: decode, evaluate, check constraints, score.

This is the paper's Evaluation Block (Fig. 3(a)): an encoded individual is
decoded into an accelerator design point, scored by the HW performance
evaluator, and its fitness is replaced with a (graded) negative penalty when
the design violates the budget, so that optimization algorithms of any kind
can be plugged into the Optimization Block unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.arch.area import AreaBreakdown, AreaModel
from repro.arch.energy import EnergyModel
from repro.arch.hardware import HardwareConfig
from repro.arch.platform import Platform
from repro.cost.maestro import CostModel
from repro.cost.performance import ModelPerformance
from repro.encoding.genome import Genome, GenomeSpace
from repro.framework.constraints import ConstraintChecker
from repro.framework.designpoint import AcceleratorDesign
from repro.framework.objective import Objective, objective_value
from repro.mapping.mapping import Mapping
from repro.workloads.layer import Layer
from repro.workloads.model import Model

#: Scale of the penalty assigned to invalid design points.  It dominates any
#: achievable objective value so that every valid point outranks every
#: invalid one, while the severity grading still gives the search a slope
#: back towards the feasible region.
INVALID_FITNESS_SCALE = 1e18


@dataclass(frozen=True)
class EvaluationResult:
    """Everything the framework knows about one evaluated design point."""

    fitness: float
    valid: bool
    objective: Objective
    objective_value: float
    design: AcceleratorDesign
    violations: tuple
    genome: Optional[Genome] = None

    @property
    def latency(self) -> float:
        """Total model latency of the design point (cycles)."""
        return self.design.latency

    @property
    def energy(self) -> float:
        """Total model energy of the design point."""
        return self.design.energy

    @property
    def latency_area_product(self) -> float:
        """Latency times area of the design point."""
        return self.design.latency_area_product


class DesignEvaluator:
    """Decodes and scores design points for one model on one platform.

    Parameters
    ----------
    model:
        Target DNN model.
    platform:
        Area budget and bandwidth assumptions (edge / cloud).
    objective:
        The metric to minimize.
    fixed_hardware:
        When given, the Fixed-HW use case is enabled: the PE array and
        buffer capacities are pinned and only the mapping is evaluated
        (mappings that do not fit the buffers are invalid).
    area_model / energy_model / bytes_per_element:
        Technology models; defaults are the calibrated models described in
        DESIGN.md.
    buffer_allocation:
        ``"exact"`` (default, the paper's strategy) allocates exactly the
        buffer capacity the decoded mapping needs; ``"fill"`` instead gives
        the L2 all of the area budget left over after PEs and L1s, which is
        the naive alternative used by the buffer-allocation ablation.
    """

    def __init__(
        self,
        model: Model,
        platform: Platform,
        objective: Objective = Objective.LATENCY,
        fixed_hardware: Optional[HardwareConfig] = None,
        area_model: Optional[AreaModel] = None,
        energy_model: Optional[EnergyModel] = None,
        bytes_per_element: int = 1,
        buffer_allocation: str = "exact",
    ):
        if buffer_allocation not in ("exact", "fill"):
            raise ValueError(
                f"buffer_allocation must be 'exact' or 'fill', got {buffer_allocation!r}"
            )
        self.model = model
        self.platform = platform
        self.objective = objective
        self.fixed_hardware = fixed_hardware
        self.buffer_allocation = buffer_allocation
        self.area_model = area_model if area_model is not None else AreaModel()
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.bytes_per_element = bytes_per_element
        self.cost_model = CostModel(
            energy_model=self.energy_model,
            bytes_per_element=bytes_per_element,
        )
        self.constraint_checker = ConstraintChecker(
            area_budget_um2=platform.area_budget_um2,
            fixed_hardware=fixed_hardware,
        )

    # -- public API --------------------------------------------------------

    def genome_space(self, num_levels: int = 2) -> GenomeSpace:
        """Build the genome space matching this evaluator's configuration."""
        fixed_pe_array = (
            self.fixed_hardware.pe_array if self.fixed_hardware is not None else None
        )
        max_pes = self.area_model.max_pes_within(self.platform.area_budget_um2)
        if fixed_pe_array is not None and len(fixed_pe_array) != num_levels:
            raise ValueError(
                f"fixed hardware has {len(fixed_pe_array)} levels, requested {num_levels}"
            )
        return GenomeSpace.from_model(
            self.model,
            max_pes=max_pes,
            num_levels=num_levels,
            fixed_pe_array=fixed_pe_array,
        )

    def evaluate_genome(self, genome: Genome) -> EvaluationResult:
        """Decode and score an encoded individual."""
        mapping = genome.to_mapping()
        result = self.evaluate_mapping(mapping)
        return EvaluationResult(
            fitness=result.fitness,
            valid=result.valid,
            objective=result.objective,
            objective_value=result.objective_value,
            design=result.design,
            violations=result.violations,
            genome=genome,
        )

    def evaluate_mapping(
        self,
        mapping: Mapping | Callable[[Layer], Mapping],
        pe_array: Optional[tuple] = None,
    ) -> EvaluationResult:
        """Score a mapping (or per-layer mapping provider) directly.

        Used by the Fixed-Mapping use case and the HW-opt grid-search
        baseline, where mappings come from dataflow templates rather than
        from the genome encoding.  ``pe_array`` must be given when
        ``mapping`` is a callable (the spatial sizes cannot be read off it).
        """
        if isinstance(mapping, Mapping):
            representative_mapping = mapping
        else:
            if pe_array is None:
                raise ValueError("pe_array is required for per-layer mapping providers")
            representative_mapping = None

        performance = self.cost_model.evaluate_model(
            self.model,
            mapping,
            noc_bandwidth=self.platform.noc_bandwidth,
            dram_bandwidth=self.platform.dram_bandwidth,
        )
        hardware = self._derive_hardware(
            performance,
            pe_array=pe_array
            if pe_array is not None
            else representative_mapping.pe_array,
        )
        area = self.area_model.breakdown(hardware)
        check = self.constraint_checker.check(
            hardware,
            area,
            l1_requirement_bytes=performance.l1_requirement_bytes,
            l2_requirement_bytes=performance.l2_requirement_bytes,
        )
        value = objective_value(self.objective, performance, area)
        fitness = self._fitness(value, check.valid, check.severity)
        design = AcceleratorDesign(
            hardware=hardware,
            mapping=representative_mapping
            if representative_mapping is not None
            else mapping(self.model.unique_layers()[0]),
            performance=performance,
            area=area,
        )
        return EvaluationResult(
            fitness=fitness,
            valid=check.valid,
            objective=self.objective,
            objective_value=value,
            design=design,
            violations=check.violations,
            genome=None,
        )

    # -- internals ---------------------------------------------------------

    def _derive_hardware(
        self,
        performance: ModelPerformance,
        pe_array: tuple,
    ) -> HardwareConfig:
        """Apply the buffer-allocation strategy (or return the fixed HW)."""
        if self.fixed_hardware is not None:
            return self.fixed_hardware
        l1_size = max(1, performance.l1_requirement_bytes)
        l2_size = max(1, performance.l2_requirement_bytes)
        if self.buffer_allocation == "fill":
            num_pes = 1
            for size in pe_array:
                num_pes *= int(size)
            committed = (
                num_pes * self.area_model.pe_area_um2
                + num_pes * l1_size * self.area_model.l1_area_per_byte_um2
            )
            leftover = self.platform.area_budget_um2 - committed
            if leftover > 0:
                l2_size = max(
                    l2_size, int(leftover // self.area_model.l2_area_per_byte_um2)
                )
        return HardwareConfig(
            pe_array=tuple(pe_array),
            l1_size=l1_size,
            l2_size=l2_size,
            noc_bandwidth=self.platform.noc_bandwidth,
            dram_bandwidth=self.platform.dram_bandwidth,
            bytes_per_element=self.bytes_per_element,
        )

    @staticmethod
    def _fitness(value: float, valid: bool, severity: float) -> float:
        """Higher-is-better fitness with graded penalties for invalid points."""
        if valid:
            return -value
        return -INVALID_FITNESS_SCALE * max(1.0, severity)
