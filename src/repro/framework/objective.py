"""Optimization objectives.

The paper optimizes minimum latency by default and reports latency-area
product as a secondary metric; energy and EDP are supported as alternative
objectives (Sec. V-A).  On top of the scalar objectives this module defines
vector-valued objective sets (:class:`ObjectiveSet` /
:func:`objective_vector`) for multi-objective Pareto-front search: every
component is a pure function of the same cost-model report, so one batched
evaluation pass feeds all objectives at once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union

from repro.arch.area import AreaBreakdown
from repro.cost.performance import ModelPerformance


class Objective(enum.Enum):
    """What the search minimizes."""

    LATENCY = "latency"
    ENERGY = "energy"
    EDP = "edp"
    AREA = "area"
    LATENCY_AREA_PRODUCT = "latency_area_product"

    @staticmethod
    def from_name(name: str) -> "Objective":
        """Look up an objective by its value string (case-insensitive)."""
        key = name.strip().lower()
        for objective in Objective:
            if objective.value == key:
                return objective
        known = ", ".join(objective.value for objective in Objective)
        raise ValueError(f"unknown objective {name!r}; available: {known}")


def objective_value(
    objective: Objective,
    performance: ModelPerformance,
    area: AreaBreakdown,
) -> float:
    """Scalar value (lower is better) of ``objective`` for a design point."""
    if objective is Objective.LATENCY:
        return performance.latency
    if objective is Objective.ENERGY:
        return performance.energy
    if objective is Objective.EDP:
        return performance.edp
    if objective is Objective.AREA:
        return area.total
    if objective is Objective.LATENCY_AREA_PRODUCT:
        return performance.latency * area.total
    raise ValueError(f"unhandled objective {objective!r}")


def objective_vector(
    objectives: Iterable[Objective],
    performance: ModelPerformance,
    area: AreaBreakdown,
) -> Tuple[float, ...]:
    """Per-objective values (lower is better each) from one evaluation.

    All components derive from the *same* performance report and area
    breakdown, so a single cost-model pass prices every objective.
    """
    return tuple(
        objective_value(objective, performance, area) for objective in objectives
    )


@dataclass(frozen=True)
class ObjectiveSet:
    """An ordered set of objectives for multi-objective search.

    The first objective is the *primary* one: it drives the scalar fitness
    the single-objective machinery (best-so-far tracking, penalty grading)
    keeps using, so the scalar path stays bit-identical whether or not a
    vector of objectives is requested alongside it.
    """

    objectives: Tuple[Objective, ...]

    def __post_init__(self) -> None:
        objectives = tuple(self.objectives)
        if not objectives:
            raise ValueError("an ObjectiveSet needs at least one objective")
        if len(set(objectives)) != len(objectives):
            raise ValueError(f"duplicate objectives in {objectives}")
        object.__setattr__(self, "objectives", objectives)

    @staticmethod
    def from_names(
        names: Union[str, Iterable[str]],
    ) -> "ObjectiveSet":
        """Build a set from ``"latency,energy,area"`` or an iterable of names."""
        if isinstance(names, str):
            names = [part for part in names.split(",") if part.strip()]
        return ObjectiveSet(tuple(Objective.from_name(name) for name in names))

    @property
    def primary(self) -> Objective:
        """The first objective (drives the scalar fitness)."""
        return self.objectives[0]

    @property
    def names(self) -> Tuple[str, ...]:
        """Value strings of the objectives, in order."""
        return tuple(objective.value for objective in self.objectives)

    def values(
        self, performance: ModelPerformance, area: AreaBreakdown
    ) -> Tuple[float, ...]:
        """Objective vector of one evaluated design point."""
        return objective_vector(self.objectives, performance, area)

    def __len__(self) -> int:
        return len(self.objectives)

    def __iter__(self) -> Iterator[Objective]:
        return iter(self.objectives)
