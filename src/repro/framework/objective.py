"""Optimization objectives.

The paper optimizes minimum latency by default and reports latency-area
product as a secondary metric; energy and EDP are supported as alternative
objectives (Sec. V-A).
"""

from __future__ import annotations

import enum

from repro.arch.area import AreaBreakdown
from repro.cost.performance import ModelPerformance


class Objective(enum.Enum):
    """What the search minimizes."""

    LATENCY = "latency"
    ENERGY = "energy"
    EDP = "edp"
    LATENCY_AREA_PRODUCT = "latency_area_product"

    @staticmethod
    def from_name(name: str) -> "Objective":
        """Look up an objective by its value string (case-insensitive)."""
        key = name.strip().lower()
        for objective in Objective:
            if objective.value == key:
                return objective
        raise KeyError(f"unknown objective {name!r}")


def objective_value(
    objective: Objective,
    performance: ModelPerformance,
    area: AreaBreakdown,
) -> float:
    """Scalar value (lower is better) of ``objective`` for a design point."""
    if objective is Objective.LATENCY:
        return performance.latency
    if objective is Objective.ENERGY:
        return performance.energy
    if objective is Objective.EDP:
        return performance.edp
    if objective is Objective.LATENCY_AREA_PRODUCT:
        return performance.latency * area.total
    raise ValueError(f"unhandled objective {objective!r}")
