"""Multi-objective search primitives: dominance, sorting, archives, results.

Everything in this module works on *minimization* objective vectors (plain
tuples of floats, lower is better on every axis), which is the convention
of :func:`repro.framework.objective.objective_vector`.  The building blocks
are the classic NSGA-II ones — fast non-dominated sort and crowding
distance — shared between the NSGA-II optimizer
(:mod:`repro.optim.nsga2`), the tracker-side :class:`ParetoArchive` that
collects the front of *every* search, and the analysis helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.framework.evaluator import EvaluationResult
from repro.framework.objective import Objective

#: Default bound of a tracker-side Pareto archive.  Fronts of the 2-3
#: objective problems this repository searches rarely exceed a few dozen
#: distinct points; the bound exists so a pathological search cannot grow
#: the archive without limit.
DEFAULT_ARCHIVE_CAPACITY = 256


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one.
    """
    strictly_better = False
    for value_a, value_b in zip(a, b):
        if value_a > value_b:
            return False
        if value_a < value_b:
            strictly_better = True
    return strictly_better


def _domination_matrix(values: Sequence[Sequence[float]]) -> np.ndarray:
    """Pairwise dominance: ``matrix[i, j]`` is True when ``i`` dominates ``j``.

    One broadcasted comparison instead of O(N^2) Python ``dominates``
    calls; the diagonal is False (a vector never dominates itself) and
    equal vectors never dominate each other, matching :func:`dominates`.
    """
    matrix = np.asarray(values, dtype=float)
    no_worse = (matrix[:, None, :] <= matrix[None, :, :]).all(axis=2)
    strictly_better = (matrix[:, None, :] < matrix[None, :, :]).any(axis=2)
    return no_worse & strictly_better


def non_dominated_indices(values: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated vectors among ``values``.

    Duplicates of a non-dominated vector are all kept (equal vectors never
    dominate each other); callers that want one representative per distinct
    vector should dedupe first.
    """
    if len(values) == 0:
        return []
    dominated = _domination_matrix(values).any(axis=0)
    return np.flatnonzero(~dominated).tolist()


def fast_non_dominated_sort(
    values: Sequence[Sequence[float]],
) -> List[List[int]]:
    """NSGA-II fast non-dominated sort: indices grouped into fronts.

    Front 0 is the non-dominated set; front ``i`` is non-dominated once
    fronts ``< i`` are removed.  Every index appears in exactly one front.

    Vectorized over the pairwise dominance matrix; fronts come back with
    *exactly* the index order of :func:`fast_non_dominated_sort_reference`
    (pinned by the parity tests), because within-front order decides which
    of several duplicate vectors receives the infinite boundary crowding
    distance — and therefore selection, and therefore whole search
    trajectories.  The reference emits a member as soon as its last
    remaining dominator is processed, so the order key within a front is
    (position of that dominator in the previous front, member index).
    """
    count = len(values)
    if count == 0:
        return []
    dominance = _domination_matrix(values)
    remaining = dominance.sum(axis=0)
    fronts: List[List[int]] = []
    current = np.flatnonzero(remaining == 0)
    while current.size:
        fronts.append(current.tolist())
        remaining[current] = -1
        processed = dominance[current]
        decremented = remaining - processed.sum(axis=0)
        released = np.flatnonzero((remaining > 0) & (decremented == 0))
        remaining = np.where(remaining > 0, decremented, remaining)
        if released.size > 1:
            last_dominator = (len(current) - 1) - processed[::-1, released].argmax(
                axis=0
            )
            released = released[np.lexsort((released, last_dominator))]
        current = released
    return fronts


def fast_non_dominated_sort_reference(
    values: Sequence[Sequence[float]],
) -> List[List[int]]:
    """The original pure-Python sort, kept as ground truth for parity tests."""
    count = len(values)
    dominated_by: List[List[int]] = [[] for _ in range(count)]
    domination_counts = [0] * count
    fronts: List[List[int]] = [[]]
    for i in range(count):
        for j in range(i + 1, count):
            if dominates(values[i], values[j]):
                dominated_by[i].append(j)
                domination_counts[j] += 1
            elif dominates(values[j], values[i]):
                dominated_by[j].append(i)
                domination_counts[i] += 1
    for index in range(count):
        if domination_counts[index] == 0:
            fronts[0].append(index)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for index in fronts[current]:
            for dominated in dominated_by[index]:
                domination_counts[dominated] -= 1
                if domination_counts[dominated] == 0:
                    next_front.append(dominated)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the loop always appends one trailing empty front
    return fronts


def crowding_distances(values: Sequence[Sequence[float]]) -> np.ndarray:
    """NSGA-II crowding distance of each vector within one front.

    Boundary points on any objective get infinite distance, so selection
    pressure always preserves the per-objective extremes of a front.
    """
    count = len(values)
    distances = np.zeros(count)
    if count == 0:
        return distances
    matrix = np.asarray(values, dtype=float)
    if count <= 2:
        distances[:] = np.inf
        return distances
    for axis in range(matrix.shape[1]):
        order = np.argsort(matrix[:, axis], kind="stable")
        column = matrix[order, axis]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        span = column[-1] - column[0]
        if span <= 0.0:
            continue
        distances[order[1:-1]] += (column[2:] - column[:-2]) / span
    return distances


class ParetoArchive:
    """Bounded archive of non-dominated evaluation results.

    The archive keeps at most ``capacity`` mutually non-dominated results,
    deduplicated by objective vector (the first design reaching a vector is
    kept).  When an insertion would exceed the capacity the most crowded
    point is evicted, which preserves the per-objective extremes (their
    crowding distance is infinite).
    """

    def __init__(self, capacity: int = DEFAULT_ARCHIVE_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[Tuple[float, ...], EvaluationResult] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, result: EvaluationResult) -> bool:
        """Offer a result to the archive; True when it enters the front."""
        vector = result.objective_vector
        if vector is None:
            raise ValueError("archive results need an objective_vector")
        vector = tuple(vector)
        if vector in self._entries:
            return False
        for existing in self._entries:
            if dominates(existing, vector):
                return False
        self._entries = {
            existing: entry
            for existing, entry in self._entries.items()
            if not dominates(vector, existing)
        }
        self._entries[vector] = result
        if len(self._entries) > self.capacity:
            self._evict_most_crowded()
        return True

    def front(self) -> List[EvaluationResult]:
        """The archived results, sorted by objective vector."""
        return [self._entries[vector] for vector in sorted(self._entries)]

    def entries_in_order(self) -> List[EvaluationResult]:
        """The archived results in *insertion* order (checkpoint snapshots).

        Eviction tie-breaking under crowding depends on entry order, so a
        checkpoint must capture — and :meth:`restore_entries` must rebuild —
        this order exactly for resumed searches to stay bit-identical.
        """
        return list(self._entries.values())

    def restore_entries(self, results) -> None:
        """Reload a checkpoint snapshot, preserving its insertion order.

        Entries are reinserted directly (not through :meth:`add`): a
        snapshot is already deduplicated and mutually non-dominated, and
        re-filtering could reorder ties.
        """
        self._entries = {}
        for result in results:
            if result.objective_vector is None:
                raise ValueError("archive results need an objective_vector")
            self._entries[tuple(result.objective_vector)] = result

    def front_values(self) -> List[Tuple[float, ...]]:
        """The archived objective vectors, sorted."""
        return sorted(self._entries)

    def _evict_most_crowded(self) -> None:
        vectors = list(self._entries)
        distances = crowding_distances(vectors)
        victim = vectors[int(np.argmin(distances))]
        del self._entries[victim]


@dataclass(frozen=True)
class ParetoResult:
    """Outcome of one multi-objective search: the front plus bookkeeping.

    ``front`` entries are full :class:`EvaluationResult` objects (design,
    genome, objective vector), sorted by objective vector, so every design
    on the trade-off curve can be serialized or shipped downstream just
    like a single-objective best.
    """

    optimizer_name: str
    objectives: Tuple[Objective, ...]
    front: Tuple[EvaluationResult, ...]
    evaluations: int
    sampling_budget: int
    wall_time_seconds: float
    #: Batched-view usage of the underlying tracker: multi-objective search
    #: must not silently drop the batched fast path, so runs record it.
    batch_calls: int = 0
    batched_evaluations: int = 0

    @property
    def objective_names(self) -> Tuple[str, ...]:
        """Value strings of the searched objectives, in order."""
        return tuple(objective.value for objective in self.objectives)

    @property
    def front_values(self) -> Tuple[Tuple[float, ...], ...]:
        """Objective vectors of the front, in front order."""
        return tuple(tuple(entry.objective_vector) for entry in self.front)

    @property
    def found_valid(self) -> bool:
        """True when the search found at least one budget-respecting design."""
        return bool(self.front)

    @property
    def evals_per_second(self) -> float:
        """Search throughput (evaluations per wall-clock second)."""
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.evaluations / self.wall_time_seconds

    def is_non_dominated(self) -> bool:
        """True when no front member dominates another (sanity invariant)."""
        values = self.front_values
        return len(non_dominated_indices(values)) == len(values)

    def extreme_value(self, objective: Objective) -> float:
        """Best value of ``objective`` on the front (``inf`` when empty)."""
        try:
            axis = self.objectives.index(objective)
        except ValueError:
            raise ValueError(
                f"{objective} is not among the searched objectives {self.objectives}"
            ) from None
        if not self.front:
            return float("inf")
        return min(values[axis] for values in self.front_values)

    def extreme_point(self, objective: Objective) -> Optional[EvaluationResult]:
        """Front member with the best value of ``objective`` (None when empty)."""
        if not self.front:
            return None
        axis = self.objectives.index(objective)
        return min(self.front, key=lambda entry: entry.objective_vector[axis])

    def summary(self) -> str:
        """One-line human-readable summary."""
        names = ",".join(self.objective_names)
        if not self.front:
            return (
                f"{self.optimizer_name}[{names}]: empty front "
                f"({self.evaluations}/{self.sampling_budget} samples)"
            )
        extremes = " ".join(
            f"{objective.value}<={self.extreme_value(objective):.3e}"
            for objective in self.objectives
        )
        return (
            f"{self.optimizer_name}[{names}]: front of {len(self.front)} "
            f"({extremes}) ({self.evaluations}/{self.sampling_budget} samples, "
            f"{self.wall_time_seconds:.1f}s, {self.evals_per_second:.0f} evals/s)"
        )
