#!/usr/bin/env python3
"""Design one accelerator for a whole workload suite.

The Co-opt Framework accepts "any DNN model(s)": when a device has to serve
several networks (say a vision CNN and a recommendation model), the HW
configuration must be chosen against all of them at once, even though each
would prefer a different compute-to-memory balance.  This example

1. co-optimizes an accelerator for each member model alone,
2. co-optimizes one accelerator for the weighted suite, and
3. reports how the specialist designs and the shared design differ
   (PE count, buffer split, per-model latency).

Usage::

    python examples/multi_model_accelerator.py --models mnasnet dlrm --budget 1500
"""

from __future__ import annotations

import argparse

from repro import EDGE, CoOptimizationFramework, DiGamma, ModelSuite, get_model
from repro.analysis import compare_designs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=["mnasnet", "dlrm"],
                        help="member models of the suite")
    parser.add_argument("--weights", nargs="+", type=int, default=None,
                        help="relative inference frequency of each model")
    parser.add_argument("--budget", type=int, default=1500, help="sampling budget per search")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    suite = ModelSuite.from_names("suite", args.models, weights=args.weights)
    print(suite.summary())
    print()

    results = {}
    # Specialist accelerators: one per member model.
    for model_name in args.models:
        framework = CoOptimizationFramework(get_model(model_name), EDGE)
        results[f"only {model_name}"] = framework.search(
            DiGamma(), sampling_budget=args.budget, seed=args.seed
        )

    # One shared accelerator for the whole suite.
    shared_framework = CoOptimizationFramework(suite.as_model(), EDGE)
    shared = shared_framework.search(DiGamma(), sampling_budget=args.budget, seed=args.seed)
    results["shared (suite)"] = shared

    print(compare_designs(results))
    print()

    if shared.found_valid:
        # How well does the shared design serve each member model?
        shared_design = shared.best.design
        print("Shared design evaluated per member model:")
        for model_name in args.models:
            framework = CoOptimizationFramework(get_model(model_name), EDGE)
            evaluation = framework.evaluator.evaluate_mapping(
                shared_design.mapping, pe_array=shared_design.hardware.pe_array
            )
            specialist = results[f"only {model_name}"]
            if specialist.found_valid and evaluation.valid:
                penalty = evaluation.design.latency / specialist.best_latency
                print(f"  {model_name:<14} {evaluation.design.latency:.3e} cycles "
                      f"({penalty:.2f}x vs its specialist design)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
