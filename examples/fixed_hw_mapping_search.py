#!/usr/bin/env python3
"""Fixed-HW use case: find the best mapping for an accelerator you already have.

The framework's design-constraint input (paper Sec. III-B) supports the
compiler-style scenario: the chip is already built, only the mapping can
change.  This example fixes a compute-focused accelerator, then

1. evaluates the hand-designed NVDLA-like (dla) mapping on it, and
2. lets GAMMA (the mapping-only GA) search for a better mapping under the
   same buffer capacities,

and reports the speedup of searched over manual mapping per model.

Usage::

    python examples/fixed_hw_mapping_search.py [--models mnasnet bert] [--budget 1500]
"""

from __future__ import annotations

import argparse

from repro import EDGE, CoOptimizationFramework, GammaMapper, get_dataflow, get_model
from repro.experiments.settings import make_fixed_hardware


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=["mnasnet", "bert"],
                        help="models to map onto the fixed accelerator")
    parser.add_argument("--budget", type=int, default=1500, help="sampling budget per search")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    hardware = make_fixed_hardware(EDGE, compute_fraction=0.75)
    print("Fixed accelerator (compute-focused, edge budget):")
    print(f"  {hardware.describe()}\n")

    dla = get_dataflow("dla")
    for model_name in args.models:
        model = get_model(model_name)
        framework = CoOptimizationFramework(model, EDGE, fixed_hardware=hardware)

        manual = framework.evaluator.evaluate_mapping(
            lambda layer: dla(layer, hardware.pe_array),
            pe_array=hardware.pe_array,
        )
        searched = framework.search(GammaMapper(), sampling_budget=args.budget,
                                    seed=args.seed)

        print(f"=== {model_name} ===")
        if manual.valid:
            print(f"  dla-like manual mapping : {manual.design.latency:.3e} cycles")
        else:
            print("  dla-like manual mapping : does not fit the fixed buffers")
        if searched.found_valid:
            print(f"  GAMMA searched mapping  : {searched.best_latency:.3e} cycles")
            if manual.valid:
                print(f"  speedup                 : "
                      f"{manual.design.latency / searched.best_latency:.2f}x")
            print("  searched mapping:")
            for line in searched.best.design.mapping.describe().splitlines():
                print("    " + line)
        else:
            print("  GAMMA searched mapping  : no valid mapping found")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
