#!/usr/bin/env python3
"""Plug different optimization algorithms into the Co-opt Framework.

The framework exposes one generic interface (a sampling budget and a fitness
function), so any black-box optimizer can drive the co-optimization.  This
example runs a user-selected subset of the paper's nine algorithms on one
model and prints the best latency and the convergence history of each — a
miniature, single-model version of the paper's Fig. 5.

Usage::

    python examples/compare_optimizers.py --model mnasnet \
        --optimizers random cma digamma --budget 1500
"""

from __future__ import annotations

import argparse

from repro import EDGE, CoOptimizationFramework, get_model, get_optimizer
from repro.optim.registry import available_optimizers


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mnasnet", help="target DNN model")
    parser.add_argument("--optimizers", nargs="+",
                        default=["random", "stdga", "cma", "digamma"],
                        help=f"optimizers to compare (available: {available_optimizers()})")
    parser.add_argument("--budget", type=int, default=1500, help="sampling budget per search")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    model = get_model(args.model)
    framework = CoOptimizationFramework(model, EDGE)
    print(f"Comparing optimizers on {model.name} (edge, {args.budget} samples each)\n")

    results = {}
    for name in args.optimizers:
        optimizer = get_optimizer(name)
        results[optimizer.name] = framework.search(
            optimizer, sampling_budget=args.budget, seed=args.seed
        )

    best_latency = min(
        (result.best_latency for result in results.values()), default=float("inf")
    )
    print(f"{'optimizer':<12} {'latency (cycles)':>18} {'vs best':>9} "
          f"{'improvements':>13} {'time':>8}")
    print("-" * 66)
    for name, result in results.items():
        if result.found_valid:
            ratio = result.best_latency / best_latency
            print(f"{name:<12} {result.best_latency:>18.3e} {ratio:>8.2f}x "
                  f"{len(result.history):>13d} {result.wall_time_seconds:>7.1f}s")
        else:
            print(f"{name:<12} {'N/A':>18} {'-':>9} {len(result.history):>13d} "
                  f"{result.wall_time_seconds:>7.1f}s")

    print("\nConvergence (evaluation index of each improvement -> latency):")
    for name, result in results.items():
        if not result.found_valid:
            continue
        points = [f"{index}:{-fitness:.2e}" for index, fitness in result.history[-5:]
                  if fitness < 0]
        print(f"  {name:<12} ... {' '.join(points)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
