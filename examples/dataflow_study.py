#!/usr/bin/env python3
"""Use the cost model directly: fixed dataflows across diverse workloads.

No search at all — this example drives the MAESTRO-style analytical cost
model by hand, evaluating the three classic fixed dataflows (NVDLA-like,
ShiDianNao-like, Eyeriss-like) on one representative layer from each model
family.  It prints latency, PE utilization and off-chip traffic, showing why
no single manual dataflow wins everywhere — the observation that motivates
mapping search and, ultimately, HW-mapping co-optimization.

Usage::

    python examples/dataflow_study.py [--pe-rows 16] [--pe-cols 16]
"""

from __future__ import annotations

import argparse

from repro import CostModel, get_dataflow, get_model
from repro.mapping.dataflows import DATAFLOW_STYLES

#: Representative layers: (model, index into unique_layers, description).
REPRESENTATIVE_LAYERS = (
    ("resnet50", 6, "mid-network 3x3 convolution"),
    ("mobilenet_v2", 10, "depthwise 3x3 convolution"),
    ("bert", 0, "attention projection GEMM"),
    ("dlrm", 4, "top-MLP GEMM"),
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pe-rows", type=int, default=16, help="PE array rows")
    parser.add_argument("--pe-cols", type=int, default=16, help="PE array columns")
    parser.add_argument("--noc-bw", type=float, default=64.0, help="NoC bytes/cycle")
    parser.add_argument("--dram-bw", type=float, default=16.0, help="DRAM bytes/cycle")
    args = parser.parse_args()

    cost_model = CostModel()
    pe_array = (args.pe_rows, args.pe_cols)
    print(f"PE array: {pe_array[0]}x{pe_array[1]}, "
          f"NoC {args.noc_bw:g} B/cyc, DRAM {args.dram_bw:g} B/cyc\n")

    for model_name, layer_index, description in REPRESENTATIVE_LAYERS:
        model = get_model(model_name)
        unique = model.unique_layers()
        layer = unique[min(layer_index, len(unique) - 1)]
        dims = layer.dims
        print(f"=== {model_name}: {layer.name} ({description}) ===")
        print(f"    K={dims['K']} C={dims['C']} Y={dims['Y']} X={dims['X']} "
              f"R={dims['R']} S={dims['S']}")
        print(f"    {'dataflow':<10} {'latency':>12} {'utilization':>12} "
              f"{'DRAM MB':>9} {'bound':>8}")
        best = None
        for style in DATAFLOW_STYLES:
            mapping = get_dataflow(style)(layer, pe_array)
            report = cost_model.evaluate_layer(layer, mapping, args.noc_bw, args.dram_bw)
            print(f"    {style + '-like':<10} {report.latency:>12.3e} "
                  f"{report.utilization:>11.1%} {report.dram_bytes / 1e6:>9.2f} "
                  f"{report.bottleneck:>8}")
            if best is None or report.latency < best[1]:
                best = (style, report.latency)
        print(f"    -> best fixed dataflow here: {best[0]}-like\n")

    print("Different layers prefer different dataflows; a fixed choice leaves "
          "performance on the table, which is what the co-optimizer recovers.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
