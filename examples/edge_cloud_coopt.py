#!/usr/bin/env python3
"""Edge vs. cloud: how the area budget changes the co-optimized accelerator.

Runs DiGamma on the same model under the paper's two platform presets
(0.2 mm^2 edge, 7.0 mm^2 cloud) and contrasts the resulting designs: PE
count, buffer sizes, compute-to-buffer area split and latency.  This is the
scenario the paper's introduction motivates — the "right" accelerator looks
completely different once the budget or the workload changes, which is why
the co-optimization loop has to be automatic.

Usage::

    python examples/edge_cloud_coopt.py [--model resnet50] [--budget 2000]
"""

from __future__ import annotations

import argparse

from repro import CLOUD, EDGE, CoOptimizationFramework, DiGamma, get_model


def search(model, platform, budget: int, seed: int):
    framework = CoOptimizationFramework(model, platform)
    return framework.search(DiGamma(), sampling_budget=budget, seed=seed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet50", help="target DNN model")
    parser.add_argument("--budget", type=int, default=2000, help="sampling budget per search")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    model = get_model(args.model)
    print(f"Co-optimizing {model.name} for edge and cloud budgets "
          f"({args.budget} samples each)\n")

    results = {}
    for platform in (EDGE, CLOUD):
        results[platform.name] = search(model, platform, args.budget, args.seed)

    for name, result in results.items():
        print(f"=== {name} ({'0.2' if name == 'edge' else '7.0'} mm^2) ===")
        if not result.found_valid:
            print("no valid design found\n")
            continue
        print(result.best.design.describe())
        print()

    edge_result, cloud_result = results["edge"], results["cloud"]
    if edge_result.found_valid and cloud_result.found_valid:
        speedup = edge_result.best_latency / cloud_result.best_latency
        edge_pes = edge_result.best.design.hardware.num_pes
        cloud_pes = cloud_result.best.design.hardware.num_pes
        print(f"Cloud design uses {cloud_pes / edge_pes:.1f}x more PEs and is "
              f"{speedup:.1f}x faster than the edge design.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
