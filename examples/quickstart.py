#!/usr/bin/env python3
"""Quickstart: co-optimize HW and mapping for ResNet-18 on an edge budget.

This is the 60-second tour of the library: pick a model and a platform,
run DiGamma under a sampling budget, and inspect the accelerator design
point it found (PE array, derived buffers, mapping, area split, latency).

Usage::

    python examples/quickstart.py [--model resnet18] [--budget 2000]
"""

from __future__ import annotations

import argparse

from repro import EDGE, CoOptimizationFramework, DiGamma, get_model


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet18", help="target DNN model")
    parser.add_argument("--budget", type=int, default=2000,
                        help="sampling budget (number of evaluated design points)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    model = get_model(args.model)
    print(f"Target model: {model.name} "
          f"({len(model.layers)} layers, {model.total_macs / 1e9:.2f} GMACs)")
    print(f"Platform: edge, area budget {EDGE.area_budget_mm2:.1f} mm^2")
    print(f"Sampling budget: {args.budget} design points\n")

    framework = CoOptimizationFramework(model, EDGE)
    result = framework.search(DiGamma(), sampling_budget=args.budget, seed=args.seed)

    if not result.found_valid:
        print("No valid design found; increase the sampling budget.")
        return 1

    design = result.best.design
    print("Best design point found by DiGamma")
    print("-" * 40)
    print(design.describe())
    print()
    print(f"Search summary: {result.summary()}")
    print(f"Average PE utilization: {design.performance.average_utilization:.1%}")
    print(f"Off-chip traffic: {design.performance.dram_bytes / 1e6:.2f} MB per inference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
