"""Compatibility shim for toolchains without PEP 660 editable support.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on environments whose setuptools
predates native wheel building (e.g. setuptools < 70 without ``wheel``).
"""

from setuptools import setup

setup()
